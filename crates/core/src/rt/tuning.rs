//! Adaptive self-tuning for the rt reclamation path.
//!
//! A hysteresis controller in the mold of the simulator's
//! `fallback_enter_pct`/`fallback_exit_pct` pair: it watches the live
//! [`RtStats`] counters — the windowed overflow rate and the
//! `reclaim_lag_ticks` signal — and retargets two knobs on the
//! [`Reclaimer`]:
//!
//! * **Grace**: entering degraded mode (overflow pressure above the
//!   enter threshold) shrinks the grace toward `min_grace`, so parked
//!   items become due sooner and queue slots recycle faster; exiting
//!   (pressure back under the exit threshold for a window) restores the
//!   configured baseline. The floor keeps the §4.2 safety rule intact —
//!   grace never drops below the configured minimum cycles.
//! * **Wheel size**: when the observed reclaim lag outgrows the calendar
//!   window (items spilling to the O(n) overflow list), the wheel
//!   doubles, up to `max_wheel_slots`; after consecutive calm windows it
//!   halves back, down to `min_wheel_slots`. Resizes preserve dues
//!   exactly (see `ShardedReclaimer::set_wheel_slots`), so the tuner can
//!   only affect performance, never safety.
//!
//! Enter/exit thresholds are strictly ordered (enter > exit), giving the
//! controller a dead band: a workload hovering at the boundary doesn't
//! flap between modes — the same argument as the simulator's fallback
//! hysteresis.

use crate::rt::queue::RtStats;
use crate::rt::reclaim::{Reclaimer, MAX_WHEEL_SLOTS};
use crate::rt::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::rt::sync::Mutex;

/// Knobs for [`RtTuner`]. `Default` mirrors the simulator's fallback
/// hysteresis shape at rt-appropriate magnitudes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtTuningConfig {
    /// Enter degraded mode when the windowed overflow percentage reaches
    /// this (publish overflows per publish attempt, 0–100).
    pub enter_overflow_pct: u64,
    /// Exit degraded mode when it falls back below this. Must be
    /// strictly less than `enter_overflow_pct` (the hysteresis band).
    pub exit_overflow_pct: u64,
    /// Baseline grace in sweep cycles (the paper's 2).
    pub base_grace: u64,
    /// Floor the degraded mode may shrink grace to. Safety floor: never 0.
    pub min_grace: u64,
    /// Smallest wheel the calm path narrows back to.
    pub min_wheel_slots: usize,
    /// Largest wheel the lag path widens to (clamped to
    /// [`MAX_WHEEL_SLOTS`]).
    pub max_wheel_slots: usize,
    /// Consecutive calm observations required before narrowing the wheel.
    pub narrow_after_calm: u32,
}

impl Default for RtTuningConfig {
    fn default() -> Self {
        RtTuningConfig {
            enter_overflow_pct: 10,
            exit_overflow_pct: 2,
            base_grace: 2,
            min_grace: 2,
            min_wheel_slots: 8,
            max_wheel_slots: 256,
            narrow_after_calm: 2,
        }
    }
}

impl RtTuningConfig {
    /// Validates the knob ranges; [`RtTuner::new`] rejects invalid
    /// configs loudly rather than running with a meaningless controller.
    pub fn validate(&self) -> Result<(), String> {
        if self.enter_overflow_pct <= self.exit_overflow_pct {
            return Err(format!(
                "enter_overflow_pct ({}) must exceed exit_overflow_pct ({}) \
                 for hysteresis",
                self.enter_overflow_pct, self.exit_overflow_pct
            ));
        }
        if self.enter_overflow_pct > 100 {
            return Err(format!(
                "enter_overflow_pct ({}) is a percentage",
                self.enter_overflow_pct
            ));
        }
        if self.min_grace == 0 {
            return Err("min_grace must be ≥ 1 (grace 0 reclaims with no sweep)".into());
        }
        if self.base_grace < self.min_grace {
            return Err(format!(
                "base_grace ({}) below min_grace ({})",
                self.base_grace, self.min_grace
            ));
        }
        if self.min_wheel_slots == 0 || self.min_wheel_slots > self.max_wheel_slots {
            return Err(format!(
                "wheel bounds [{}, {}] are not a non-empty range",
                self.min_wheel_slots, self.max_wheel_slots
            ));
        }
        if self.max_wheel_slots > MAX_WHEEL_SLOTS {
            return Err(format!(
                "max_wheel_slots ({}) exceeds the engine clamp ({MAX_WHEEL_SLOTS})",
                self.max_wheel_slots
            ));
        }
        Ok(())
    }
}

/// What one [`RtTuner::observe`] decided (for logs and the soak report).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TuningReport {
    /// Overflow percentage over the observation window (0–100).
    pub overflow_pct: u64,
    /// The reclaim lag the decision saw.
    pub reclaim_lag_ticks: u64,
    /// Whether this observation entered degraded mode.
    pub entered_degraded: bool,
    /// Whether this observation exited degraded mode.
    pub exited_degraded: bool,
    /// Grace target after the decision.
    pub grace: u64,
    /// Wheel-size target after the decision.
    pub wheel_slots: usize,
}

/// Window state the controller keeps between observations.
#[derive(Debug, Default)]
struct TunerWindow {
    prev_saved: u64,
    prev_overflows: u64,
    calm_windows: u32,
}

/// The hysteresis controller. `observe` computes targets from an
/// [`RtStats`] snapshot; `apply` pushes them into a [`Reclaimer`]. Both
/// are safe to drive from a monitor thread while worker threads run.
#[derive(Debug)]
pub struct RtTuner {
    cfg: RtTuningConfig,
    degraded: AtomicBool,
    grace: AtomicU64,
    wheel_slots: AtomicUsize,
    enters: AtomicU64,
    exits: AtomicU64,
    widenings: AtomicU64,
    narrowings: AtomicU64,
    window: Mutex<TunerWindow>,
}

impl RtTuner {
    /// Creates a tuner from a validated config.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RtTuningConfig::validate`].
    pub fn new(cfg: RtTuningConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid RtTuningConfig: {e}");
        }
        RtTuner {
            degraded: AtomicBool::new(false),
            grace: AtomicU64::new(cfg.base_grace),
            wheel_slots: AtomicUsize::new(cfg.min_wheel_slots),
            enters: AtomicU64::new(0),
            exits: AtomicU64::new(0),
            widenings: AtomicU64::new(0),
            narrowings: AtomicU64::new(0),
            window: Mutex::new(TunerWindow::default()),
            cfg,
        }
    }

    /// The active config.
    pub fn config(&self) -> &RtTuningConfig {
        &self.cfg
    }

    /// Whether the controller is currently in degraded mode.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Times degraded mode was entered.
    pub fn enters(&self) -> u64 {
        self.enters.load(Ordering::Relaxed)
    }

    /// Times degraded mode was exited.
    pub fn exits(&self) -> u64 {
        self.exits.load(Ordering::Relaxed)
    }

    /// Wheel widenings performed.
    pub fn widenings(&self) -> u64 {
        self.widenings.load(Ordering::Relaxed)
    }

    /// Wheel narrowings performed.
    pub fn narrowings(&self) -> u64 {
        self.narrowings.load(Ordering::Relaxed)
    }

    /// Current grace target.
    pub fn grace_target(&self) -> u64 {
        self.grace.load(Ordering::Relaxed)
    }

    /// Current wheel-size target.
    pub fn wheel_target(&self) -> usize {
        self.wheel_slots.load(Ordering::Relaxed)
    }

    /// Feeds one stats snapshot through the controller and returns what
    /// it decided. Call at a steady cadence (the "window" is simply the
    /// interval between calls).
    pub fn observe(&self, stats: &RtStats) -> TuningReport {
        let mut w = self.window.lock();
        let d_saved = stats.states_saved.saturating_sub(w.prev_saved);
        let d_over = stats.overflows.saturating_sub(w.prev_overflows);
        w.prev_saved = stats.states_saved;
        w.prev_overflows = stats.overflows;
        let attempts = d_saved.saturating_add(d_over);
        let overflow_pct = d_over
            .saturating_mul(100)
            .checked_div(attempts)
            .unwrap_or(0);

        let mut report = TuningReport {
            overflow_pct,
            reclaim_lag_ticks: stats.reclaim_lag_ticks,
            ..TuningReport::default()
        };

        // Grace hysteresis: overflow pressure means queue slots aren't
        // recycling — shrink the grace to its floor so parked states
        // free sooner; restore the baseline only once pressure clears.
        let was_degraded = self.degraded.load(Ordering::Acquire);
        if !was_degraded && overflow_pct >= self.cfg.enter_overflow_pct {
            self.degraded.store(true, Ordering::Release);
            self.grace.store(self.cfg.min_grace, Ordering::Relaxed);
            self.enters.fetch_add(1, Ordering::Relaxed);
            report.entered_degraded = true;
        } else if was_degraded && overflow_pct < self.cfg.exit_overflow_pct {
            self.degraded.store(false, Ordering::Release);
            self.grace.store(self.cfg.base_grace, Ordering::Relaxed);
            self.exits.fetch_add(1, Ordering::Relaxed);
            report.exited_degraded = true;
        }

        // Wheel sizing from the lag signal: the calendar should cover
        // lag + grace + 1 dues or far items camp on the O(n) overflow
        // list. Widen eagerly (double), narrow lazily (halve after
        // consecutive calm windows) — the same asymmetry as TCP's
        // congestion window, for the same reason.
        let wheel = self.wheel_slots.load(Ordering::Relaxed);
        let need = stats
            .reclaim_lag_ticks
            .saturating_add(self.grace.load(Ordering::Relaxed))
            .saturating_add(1);
        if need > wheel as u64 {
            w.calm_windows = 0;
            if wheel < self.cfg.max_wheel_slots {
                let next = (wheel * 2).min(self.cfg.max_wheel_slots);
                self.wheel_slots.store(next, Ordering::Relaxed);
                self.widenings.fetch_add(1, Ordering::Relaxed);
            }
        } else if need <= wheel as u64 / 4 {
            w.calm_windows += 1;
            if w.calm_windows >= self.cfg.narrow_after_calm {
                w.calm_windows = 0;
                if wheel > self.cfg.min_wheel_slots {
                    let next = (wheel / 2).max(self.cfg.min_wheel_slots);
                    self.wheel_slots.store(next, Ordering::Relaxed);
                    self.narrowings.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            w.calm_windows = 0;
        }

        report.grace = self.grace.load(Ordering::Relaxed);
        report.wheel_slots = self.wheel_slots.load(Ordering::Relaxed);
        report
    }

    /// Pushes the current targets into a reclaimer.
    pub fn apply<T>(&self, reclaimer: &Reclaimer<T>) {
        reclaimer.set_grace(self.grace.load(Ordering::Relaxed));
        reclaimer.set_wheel_slots(self.wheel_slots.load(Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::queue::RtRegistry;
    use crate::rt::reclaim::ReclaimBackend;

    fn stats(saved: u64, overflows: u64, lag: u64) -> RtStats {
        RtStats {
            states_saved: saved,
            overflows,
            reclaim_lag_ticks: lag,
            ..RtStats::default()
        }
    }

    #[test]
    fn default_config_validates() {
        RtTuningConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = RtTuningConfig::default();
        let bad = [
            (
                RtTuningConfig {
                    enter_overflow_pct: base.exit_overflow_pct,
                    ..base
                },
                "no hysteresis band",
            ),
            (
                RtTuningConfig {
                    min_grace: 0,
                    ..base
                },
                "grace floor of 0",
            ),
            (
                RtTuningConfig {
                    base_grace: 1,
                    ..base
                },
                "baseline below the floor",
            ),
            (
                RtTuningConfig {
                    min_wheel_slots: 512,
                    max_wheel_slots: 8,
                    ..base
                },
                "empty wheel range",
            ),
            (
                RtTuningConfig {
                    max_wheel_slots: MAX_WHEEL_SLOTS * 2,
                    ..base
                },
                "beyond the engine clamp",
            ),
            (
                RtTuningConfig {
                    enter_overflow_pct: 101,
                    ..base
                },
                "not a percentage",
            ),
        ];
        for (cfg, why) in bad {
            assert!(cfg.validate().is_err(), "{why}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid RtTuningConfig")]
    fn tuner_panics_on_invalid_config() {
        let cfg = RtTuningConfig {
            min_grace: 0,
            ..RtTuningConfig::default()
        };
        let _ = RtTuner::new(cfg);
    }

    #[test]
    fn hysteresis_enters_and_exits_with_a_dead_band() {
        let cfg = RtTuningConfig {
            base_grace: 4,
            min_grace: 2,
            ..RtTuningConfig::default()
        };
        let t = RtTuner::new(cfg);
        assert!(!t.degraded());
        assert_eq!(t.grace_target(), 4);

        // Window 1: 20% overflow → enter, grace drops to the floor.
        let r = t.observe(&stats(80, 20, 0));
        assert!(r.entered_degraded);
        assert!(t.degraded());
        assert_eq!(t.grace_target(), 2);
        assert_eq!(r.overflow_pct, 20);

        // Window 2: 5% — inside the dead band (exit is 2): stay degraded.
        let r = t.observe(&stats(175, 25, 0));
        assert!(!r.exited_degraded);
        assert!(t.degraded());

        // Window 3: clean — exit, grace restored.
        let r = t.observe(&stats(375, 25, 0));
        assert!(r.exited_degraded);
        assert!(!t.degraded());
        assert_eq!(t.grace_target(), 4);
        assert_eq!(t.enters(), 1);
        assert_eq!(t.exits(), 1);
    }

    #[test]
    fn wheel_widens_on_lag_and_narrows_after_calm() {
        let t = RtTuner::new(RtTuningConfig::default());
        assert_eq!(t.wheel_target(), 8);

        // Lag 20 needs 20 + 2 + 1 = 23 buckets: double twice.
        t.observe(&stats(10, 0, 20));
        assert_eq!(t.wheel_target(), 16);
        t.observe(&stats(20, 0, 20));
        assert_eq!(t.wheel_target(), 32);
        assert_eq!(t.observe(&stats(30, 0, 20)).wheel_slots, 32, "23 ≤ 32 fits");

        // Two calm windows (need ≤ wheel/4) narrow once.
        t.observe(&stats(40, 0, 1));
        assert_eq!(t.wheel_target(), 32, "first calm window only counts");
        t.observe(&stats(50, 0, 1));
        assert_eq!(t.wheel_target(), 16);
        assert_eq!(t.widenings(), 2);
        assert_eq!(t.narrowings(), 1);

        // Clamped at the configured max.
        for i in 0..10 {
            t.observe(&stats(60 + i, 0, 10_000));
        }
        assert_eq!(t.wheel_target(), 256);
    }

    #[test]
    fn apply_pushes_targets_into_the_reclaimer() {
        let registry = RtRegistry::new(2, 8);
        let rec: Reclaimer<u32> = Reclaimer::new(ReclaimBackend::Sharded, 2, 2);
        let t = RtTuner::new(RtTuningConfig {
            base_grace: 3,
            ..RtTuningConfig::default()
        });
        t.observe(&stats(10, 0, 40)); // widen to 16
        t.apply(&rec);
        assert_eq!(rec.grace(), 3);
        assert_eq!(rec.wheel_slots(), 16);
        // The retargeted reclaimer still round-trips items.
        rec.defer(&registry, 0, 9);
        for _ in 0..4 {
            registry.sweep(0);
            registry.sweep(1);
        }
        registry.advance_frontier();
        assert_eq!(rec.collect(&registry, 0), vec![9]);
    }
}
