//! Tick-gated deferred reclamation (§4.2, concurrent form).
//!
//! Objects are parked together with the registry's current minimum tick;
//! they may be handed back once every core has ticked (= swept) at least
//! `grace` more times, guaranteeing every stale local cache entry was
//! dropped in between — the runtime twin of "Latr waits two full cycles of
//! TLB invalidations".

use crate::rt::queue::RtRegistry;
use crate::rt::sync::Mutex;
use std::collections::VecDeque;

/// A deferred-reclamation queue over arbitrary payloads.
///
/// ```
/// use latr_core::rt::{RtRegistry, RtReclaimer};
/// let registry = RtRegistry::new(2, 8);
/// let reclaimer: RtReclaimer<String> = RtReclaimer::new(2); // 2-tick grace
/// reclaimer.defer(&registry, "freed page".to_owned());
/// assert!(reclaimer.collect(&registry).is_empty()); // no ticks yet
/// for _ in 0..2 { registry.sweep(0); registry.sweep(1); }
/// assert_eq!(reclaimer.collect(&registry), vec!["freed page".to_owned()]);
/// ```
///
/// # Liveness assumption
///
/// Progress depends on **every** core sweeping: the reclamation frontier
/// is [`RtRegistry::min_tick`], the *minimum* tick over all cores, so a
/// single core that never calls [`RtRegistry::sweep`] pins the frontier
/// forever and every deferred item stays parked indefinitely — memory is
/// never handed back, but safety is never violated (nothing is reclaimed
/// early). This mirrors the kernel setting, where the scheduler tick
/// guarantees each online core sweeps within one tick period (§4.1); a
/// user-space embedder must provide the same guarantee, e.g. by sweeping
/// from an idle loop or timer on behalf of otherwise-quiescent
/// participants. The `never_sweeping_core_pins_frontier_forever` test
/// locks in this stall behaviour.
#[derive(Debug)]
pub struct RtReclaimer<T> {
    grace: u64,
    pending: Mutex<VecDeque<(u64, T)>>,
}

impl<T> RtReclaimer<T> {
    /// Creates a reclaimer that waits `grace` full sweep cycles (the paper
    /// uses 2).
    pub fn new(grace: u64) -> Self {
        RtReclaimer {
            grace,
            pending: Mutex::new(VecDeque::new()),
        }
    }

    /// Parks `item` until every core has swept `grace` more times.
    pub fn defer(&self, registry: &RtRegistry, item: T) {
        let due = registry.min_tick() + self.grace;
        self.pending.lock().push_back((due, item));
    }

    /// Collects every item whose grace period has elapsed.
    pub fn collect(&self, registry: &RtRegistry) -> Vec<T> {
        let frontier = registry.min_tick();
        let mut pending = self.pending.lock();
        let mut out = Vec::new();
        while let Some(&(due, _)) = pending.front() {
            if due > frontier {
                break;
            }
            out.push(pending.pop_front().expect("front exists").1);
        }
        out
    }

    /// Items still parked.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Drains everything unconditionally (shutdown).
    pub fn drain_all(&self) -> Vec<T> {
        self.pending.lock().drain(..).map(|(_, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grace_gates_on_slowest_core() {
        let registry = RtRegistry::new(3, 8);
        let rec: RtReclaimer<u32> = RtReclaimer::new(2);
        rec.defer(&registry, 1);
        // Two cores race ahead; the third never sweeps.
        for _ in 0..10 {
            registry.sweep(0);
            registry.sweep(1);
        }
        assert!(rec.collect(&registry).is_empty(), "slowest core gates");
        registry.sweep(2);
        registry.sweep(2);
        assert_eq!(rec.collect(&registry), vec![1]);
    }

    #[test]
    fn never_sweeping_core_pins_frontier_forever() {
        // The liveness assumption documented on RtReclaimer: one core
        // that never sweeps pins min_tick() at 0 and parks every
        // deferred item forever, no matter how far the others run ahead.
        let registry = RtRegistry::new(4, 8);
        let rec: RtReclaimer<u32> = RtReclaimer::new(2);
        rec.defer(&registry, 7);
        for _ in 0..1000 {
            registry.sweep(0);
            registry.sweep(1);
            registry.sweep(2);
            // Core 3 never sweeps.
        }
        assert_eq!(registry.min_tick(), 0, "straggler pins the frontier");
        assert!(rec.collect(&registry).is_empty());
        assert_eq!(rec.pending_count(), 1);

        // Items deferred mid-stall park behind the same frontier.
        rec.defer(&registry, 8);
        assert!(rec.collect(&registry).is_empty());
        assert_eq!(rec.pending_count(), 2);

        // Only the straggler itself can unpin reclamation.
        registry.sweep(3);
        assert!(rec.collect(&registry).is_empty(), "one tick < grace of 2");
        registry.sweep(3);
        assert_eq!(rec.collect(&registry), vec![7, 8]);
        assert_eq!(rec.pending_count(), 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let registry = RtRegistry::new(1, 8);
        let rec: RtReclaimer<u32> = RtReclaimer::new(1);
        rec.defer(&registry, 1);
        registry.sweep(0);
        rec.defer(&registry, 2);
        registry.sweep(0);
        assert_eq!(rec.collect(&registry), vec![1, 2]);
    }

    #[test]
    fn drain_all_ignores_grace() {
        let registry = RtRegistry::new(2, 8);
        let rec: RtReclaimer<&str> = RtReclaimer::new(2);
        rec.defer(&registry, "a");
        rec.defer(&registry, "b");
        assert_eq!(rec.pending_count(), 2);
        assert_eq!(rec.drain_all(), vec!["a", "b"]);
        assert_eq!(rec.pending_count(), 0);
    }

    #[test]
    fn concurrent_defer_collect_smoke() {
        let registry = Arc::new(RtRegistry::new(2, 8));
        let rec: Arc<RtReclaimer<u64>> = Arc::new(RtReclaimer::new(2));
        let total = 1000u64;
        let producer = {
            let (reg, rec) = (Arc::clone(&registry), Arc::clone(&rec));
            std::thread::spawn(move || {
                for i in 0..total {
                    rec.defer(&reg, i);
                }
            })
        };
        let ticker = {
            let reg = Arc::clone(&registry);
            std::thread::spawn(move || {
                for _ in 0..64 {
                    reg.sweep(0);
                    reg.sweep(1);
                    std::thread::yield_now();
                }
            })
        };
        producer.join().unwrap();
        ticker.join().unwrap();
        let mut got = Vec::new();
        // A few final cycles so everything becomes due.
        for _ in 0..4 {
            registry.sweep(0);
            registry.sweep(1);
        }
        got.extend(rec.collect(&registry));
        assert_eq!(got.len() as u64 + rec.pending_count() as u64, total);
        assert_eq!(rec.pending_count(), 0, "all items should be due by now");
    }
}
