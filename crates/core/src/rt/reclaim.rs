//! Tick-gated deferred reclamation (§4.2, concurrent form).
//!
//! Objects are parked together with the registry's current minimum tick;
//! they may be handed back once every core has ticked (= swept) at least
//! `grace` more times, guaranteeing every stale local cache entry was
//! dropped in between — the runtime twin of "Latr waits two full cycles of
//! TLB invalidations".
//!
//! Two engines implement the rule, runtime-selectable behind
//! [`Reclaimer`] (the same pattern as the PR 4 hot-path engines):
//!
//! * [`RtReclaimer`] — the **reference** engine: one global
//!   `Mutex<VecDeque>`, every `defer`/`collect` pays the O(cores)
//!   [`RtRegistry::min_tick`] scan. Simple, obviously correct, and the
//!   executable spec the differential suite compares against.
//! * [`ShardedReclaimer`] — the **scaling** engine: per-core shards
//!   (each on its own cache line, each behind an uncontended per-shard
//!   lock) parking items by the *calling core's* local tick into a small
//!   calendar of due-buckets. `defer` touches only the caller's shard
//!   and never reads the global frontier; `collect` gates on the cached
//!   [`RtRegistry::cached_frontier`] — one atomic load instead of the
//!   scan.
//!
//! The sharded engine is *conservative* relative to the reference: it
//! parks at `tick_of(core) + grace ≥ min_tick() + grace`, so nothing is
//! ever handed back earlier than the reference would allow (the
//! differential proptest pins cumulative-subset at every step and
//! multiset equality at quiescence).

use crate::rt::pad::CachePadded;
use crate::rt::queue::RtRegistry;
use crate::rt::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::rt::sync::Mutex;
use std::collections::VecDeque;

/// A deferred-reclamation queue over arbitrary payloads.
///
/// ```
/// use latr_core::rt::{RtRegistry, RtReclaimer};
/// let registry = RtRegistry::new(2, 8);
/// let reclaimer: RtReclaimer<String> = RtReclaimer::new(2); // 2-tick grace
/// reclaimer.defer(&registry, "freed page".to_owned());
/// assert!(reclaimer.collect(&registry).is_empty()); // no ticks yet
/// for _ in 0..2 { registry.sweep(0); registry.sweep(1); }
/// assert_eq!(reclaimer.collect(&registry), vec!["freed page".to_owned()]);
/// ```
///
/// # Liveness assumption
///
/// Progress depends on **every** core sweeping: the reclamation frontier
/// is [`RtRegistry::min_tick`], the *minimum* tick over all cores, so a
/// single core that never calls [`RtRegistry::sweep`] pins the frontier
/// forever and every deferred item stays parked indefinitely — memory is
/// never handed back, but safety is never violated (nothing is reclaimed
/// early). This mirrors the kernel setting, where the scheduler tick
/// guarantees each online core sweeps within one tick period (§4.1); a
/// user-space embedder must provide the same guarantee, e.g. by sweeping
/// from an idle loop or timer on behalf of otherwise-quiescent
/// participants. The `never_sweeping_core_pins_frontier_forever` test
/// locks in this stall behaviour.
#[derive(Debug)]
pub struct RtReclaimer<T> {
    /// Grace in sweep cycles; atomic so the adaptive tuner can retarget
    /// it live (relaxed loads — a defer races with retuning benignly:
    /// either grace value is a sound "every core sweeps this many more
    /// times" promise).
    grace: AtomicU64,
    pending: Mutex<VecDeque<(u64, T)>>,
}

impl<T> RtReclaimer<T> {
    /// Creates a reclaimer that waits `grace` full sweep cycles (the paper
    /// uses 2).
    pub fn new(grace: u64) -> Self {
        RtReclaimer {
            grace: AtomicU64::new(grace),
            pending: Mutex::new(VecDeque::new()),
        }
    }

    /// The current grace period in sweep cycles.
    pub fn grace(&self) -> u64 {
        self.grace.load(Ordering::Relaxed)
    }

    /// Retargets the grace period (adaptive tuning). Only affects items
    /// deferred after the store; parked items keep their recorded due.
    pub fn set_grace(&self, grace: u64) {
        self.grace.store(grace, Ordering::Relaxed);
    }

    /// Parks `item` until every core has swept `grace` more times.
    ///
    /// The baseline is the minimum tick over *live* cores (identical to
    /// `min_tick()` while nothing is excluded): anchoring to the all-core
    /// minimum would let a long-dead core's frozen tick produce a due the
    /// live cores already passed, reclaiming before they swept even once
    /// after this defer.
    pub fn defer(&self, registry: &RtRegistry, item: T) {
        let due = registry.min_live_tick() + self.grace();
        self.pending.lock().push_back((due, item));
    }

    /// Collects every item whose grace period has elapsed.
    pub fn collect(&self, registry: &RtRegistry) -> Vec<T> {
        let mut out = Vec::new();
        self.collect_into(registry, &mut out);
        out
    }

    /// Allocation-free [`collect`](Self::collect): appends the due items
    /// to `out` (not cleared first) so callers can reuse one buffer.
    ///
    /// Gates on the live-core minimum, so an excluded (dead) core stops
    /// pinning reclamation. Dues are only *nearly* monotone once cores
    /// rejoin (the live minimum can step down), so a larger due at the
    /// queue front may briefly park smaller ones behind it — strictly
    /// conservative, never early.
    pub fn collect_into(&self, registry: &RtRegistry, out: &mut Vec<T>) {
        let frontier = registry.min_live_tick();
        let mut pending = self.pending.lock();
        while let Some(&(due, _)) = pending.front() {
            if due > frontier {
                break;
            }
            out.push(pending.pop_front().expect("front exists").1);
        }
    }

    /// Items still parked.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Drains everything unconditionally (shutdown).
    pub fn drain_all(&self) -> Vec<T> {
        self.pending.lock().drain(..).map(|(_, t)| t).collect()
    }
}

/// Default calendar buckets a shard keeps inline; dues beyond this
/// horizon (a core far ahead of the frontier) overflow into a side list.
pub const DEFAULT_WHEEL_SLOTS: usize = 8;

/// Upper clamp on the adaptive wheel size (a runaway tuner must not
/// allocate unbounded calendars).
pub const MAX_WHEEL_SLOTS: usize = 1024;

/// One core's slice of the sharded reclaimer.
#[derive(Debug)]
struct Shard<T> {
    /// Every due `< next_due` has been drained; the wheel covers dues in
    /// `[next_due, next_due + wheel.len())`.
    next_due: u64,
    /// The due-bucket calendar: due `d` parks at `wheel[d % wheel.len()]`.
    /// Buffers are recycled on drain, so steady state allocates nothing.
    /// The length is the shard's current wheel size; it follows the
    /// reclaimer-wide target lazily (resynced under the shard lock).
    wheel: Vec<Vec<T>>,
    /// `(due, item)` pairs beyond the wheel horizon.
    overflow: VecDeque<(u64, T)>,
    /// Total items parked in this shard.
    len: usize,
}

impl<T> Shard<T> {
    fn new(slots: usize) -> Self {
        Shard {
            next_due: 0,
            wheel: (0..slots).map(|_| Vec::new()).collect(),
            overflow: VecDeque::new(),
            len: 0,
        }
    }

    /// Rebuilds the calendar at `new_slots` buckets, preserving every
    /// item's due. Dues inside the old window stay distinct modulo the
    /// new size iff they fit the new window; anything beyond it moves to
    /// the overflow list (and overflow items newly within the horizon
    /// move in). Called only when the tuner retargets, never on the
    /// steady-state path.
    fn resize_wheel(&mut self, new_slots: usize) {
        let old = self.wheel.len() as u64;
        let mut moved: Vec<(u64, Vec<T>)> = Vec::new();
        for offset in 0..old {
            let due = self.next_due + offset;
            let idx = (due % old) as usize;
            if !self.wheel[idx].is_empty() {
                moved.push((due, std::mem::take(&mut self.wheel[idx])));
            }
        }
        self.wheel.clear();
        self.wheel.resize_with(new_slots, Vec::new);
        let horizon = new_slots as u64;
        for (due, mut items) in moved {
            if due - self.next_due < horizon {
                // Window dues are distinct mod the window size, so the
                // target bucket is empty; append keeps order regardless.
                let idx = (due % horizon) as usize;
                self.wheel[idx].append(&mut items);
            } else {
                for item in items.drain(..) {
                    self.overflow.push_back((due, item));
                }
            }
        }
        let mut i = 0;
        while i < self.overflow.len() {
            let due = self.overflow[i].0;
            if due >= self.next_due && due - self.next_due < horizon {
                let (due, item) = self.overflow.remove(i).expect("index checked");
                self.wheel[(due % horizon) as usize].push(item);
            } else {
                i += 1;
            }
        }
    }
}

/// The sharded, grace-bucketed reclaimer: the scaling engine.
///
/// Each core parks and collects through **its own** shard, so `defer`
/// costs one uncontended per-shard lock plus one load of the *caller's
/// own* (padded) tick counter — no global mutex, no O(cores) frontier
/// scan. `collect` gates the shard's calendar on the registry's cached
/// frontier: a single atomic load.
///
/// Safety matches [`RtReclaimer`] conservatively: an item deferred on
/// `core` is due at `tick_of(core) + grace ≥ min_tick() + grace`, and is
/// handed back only once `cached_frontier() ≥ due`, which implies
/// `min_tick() ≥ due` (the cache never leads the scan). The reference
/// engine's liveness assumption carries over unchanged: a core that
/// never sweeps pins the frontier and parks every item forever.
#[derive(Debug)]
pub struct ShardedReclaimer<T> {
    /// Grace in sweep cycles, atomic for live retuning (see
    /// [`RtReclaimer`]'s field docs).
    grace: AtomicU64,
    /// Reclaimer-wide wheel-size target; shards resync to it lazily
    /// under their own lock (one relaxed load per defer/collect).
    target_slots: AtomicUsize,
    shards: Box<[CachePadded<Mutex<Shard<T>>>]>,
}

impl<T> ShardedReclaimer<T> {
    /// Creates a reclaimer with one shard per core, waiting `grace` full
    /// sweep cycles (the paper uses 2).
    pub fn new(grace: u64, cores: usize) -> Self {
        ShardedReclaimer {
            grace: AtomicU64::new(grace),
            target_slots: AtomicUsize::new(DEFAULT_WHEEL_SLOTS),
            shards: (0..cores.max(1))
                .map(|_| CachePadded::new(Mutex::new(Shard::new(DEFAULT_WHEEL_SLOTS))))
                .collect(),
        }
    }

    /// The current grace period in sweep cycles.
    pub fn grace(&self) -> u64 {
        self.grace.load(Ordering::Relaxed)
    }

    /// Retargets the grace period (adaptive tuning). Only affects items
    /// deferred after the store; parked items keep their recorded due.
    pub fn set_grace(&self, grace: u64) {
        self.grace.store(grace, Ordering::Relaxed);
    }

    /// The current wheel-size target.
    pub fn wheel_slots(&self) -> usize {
        self.target_slots.load(Ordering::Relaxed)
    }

    /// Retargets the calendar size, clamped to
    /// `[1, `[`MAX_WHEEL_SLOTS`]`]`. Shards rebucket lazily the next time
    /// each is locked; dues are preserved exactly, so safety is untouched
    /// — a wider wheel only moves far dues off the O(n) overflow list.
    pub fn set_wheel_slots(&self, slots: usize) {
        self.target_slots
            .store(slots.clamp(1, MAX_WHEEL_SLOTS), Ordering::Relaxed);
    }

    /// Resyncs a locked shard's wheel to the reclaimer-wide target.
    fn sync_shard(&self, s: &mut Shard<T>) {
        let want = self.target_slots.load(Ordering::Relaxed);
        if want != s.wheel.len() {
            s.resize_wheel(want);
        }
    }

    /// Parks `item` on `core`'s shard until every core has swept `grace`
    /// more times. Reads only the calling core's own tick counter —
    /// never the global frontier — except while cores are excluded, when
    /// the base is clamped up to the cached frontier: a core that was
    /// itself excluded (and whose tick is behind the frontier) must not
    /// produce an already-due item before it flushes and rejoins.
    pub fn defer(&self, registry: &RtRegistry, core: usize, item: T) {
        let mut base = registry.tick_of(core);
        if registry.has_exclusions() {
            base = base.max(registry.cached_frontier());
        }
        let due = base + self.grace();
        let mut s = self.shards[core].lock();
        self.sync_shard(&mut s);
        let horizon = s.wheel.len() as u64;
        if due < s.next_due {
            // The grace already elapsed relative to the drained window
            // (e.g. grace 0 right after a collect). Park on the overflow
            // list under the *true* due so the very next collect with
            // frontier ≥ due hands it back — bumping it into the wheel
            // would wait on a future sweep that may never come.
            s.overflow.push_back((due, item));
        } else if due - s.next_due < horizon {
            let idx = (due % horizon) as usize;
            s.wheel[idx].push(item);
        } else {
            s.overflow.push_back((due, item));
        }
        s.len += 1;
    }

    /// Collects every item on `core`'s shard whose grace elapsed,
    /// gated on the cached frontier (one atomic load).
    pub fn collect(&self, registry: &RtRegistry, core: usize) -> Vec<T> {
        let mut out = Vec::new();
        self.collect_into(registry, core, &mut out);
        out
    }

    /// Allocation-free [`collect`](Self::collect): appends to `out` (not
    /// cleared first), recycling the shard's bucket buffers.
    pub fn collect_into(&self, registry: &RtRegistry, core: usize, out: &mut Vec<T>) {
        let frontier = registry.cached_frontier();
        let mut s = self.shards[core].lock();
        self.sync_shard(&mut s);
        self.drain_due(&mut s, frontier, out);
    }

    fn drain_due(&self, s: &mut Shard<T>, frontier: u64, out: &mut Vec<T>) {
        if s.next_due <= frontier {
            // The wheel only holds dues within wheel.len() of next_due,
            // so at most that many buckets can be non-empty below the
            // frontier; the window then jumps straight to frontier + 1.
            let horizon = s.wheel.len() as u64;
            let steps = (frontier - s.next_due + 1).min(horizon);
            for _ in 0..steps {
                let idx = (s.next_due % horizon) as usize;
                let mut bucket = std::mem::take(&mut s.wheel[idx]);
                s.len -= bucket.len();
                out.append(&mut bucket);
                s.wheel[idx] = bucket;
                s.next_due += 1;
            }
            s.next_due = s.next_due.max(frontier + 1);
        }
        // The overflow list holds far-future dues AND already-elapsed
        // ones (see `defer`), so it is scanned even when the wheel window
        // sits ahead of the frontier; due items release in arrival order.
        let mut i = 0;
        while i < s.overflow.len() {
            if s.overflow[i].0 <= frontier {
                let (_, item) = s.overflow.remove(i).expect("index checked");
                out.push(item);
                s.len -= 1;
            } else {
                i += 1;
            }
        }
    }

    /// Items still parked, summed across every shard.
    pub fn pending_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len).sum()
    }

    /// Drains everything unconditionally (shutdown), shard by shard, in
    /// each shard's due order. The shards stay usable afterwards.
    pub fn drain_all(&self) -> Vec<T> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let mut s = shard.lock();
            let horizon = s.wheel.len() as u64;
            for offset in 0..horizon {
                let idx = ((s.next_due + offset) % horizon) as usize;
                let mut bucket = std::mem::take(&mut s.wheel[idx]);
                s.len -= bucket.len();
                out.append(&mut bucket);
                s.wheel[idx] = bucket;
            }
            while let Some((_, item)) = s.overflow.pop_front() {
                out.push(item);
                s.len -= 1;
            }
        }
        out
    }
}

/// Which reclaimer engine a [`Reclaimer`] runs — both stay available in
/// every build; the `reference` cargo feature only flips the default
/// (the PR 4 engine-selection pattern).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReclaimBackend {
    /// [`ShardedReclaimer`]: per-core shards + cached frontier.
    Sharded,
    /// [`RtReclaimer`]: global mutex + O(cores) frontier scan.
    Reference,
}

impl Default for ReclaimBackend {
    fn default() -> Self {
        if cfg!(feature = "reference") {
            ReclaimBackend::Reference
        } else {
            ReclaimBackend::Sharded
        }
    }
}

/// Runtime-selectable deferred reclamation: one call surface over the
/// [`ShardedReclaimer`] scaling engine and the [`RtReclaimer`] reference
/// engine, so embedders (and the differential/bench harnesses) pick an
/// engine per instance.
///
/// The reference engine ignores `core` (its queue and frontier are
/// global); the sharded engine requires `defer`/`collect` to be called
/// with the calling core's id.
#[derive(Debug)]
pub struct Reclaimer<T> {
    engine: Engine<T>,
}

#[derive(Debug)]
enum Engine<T> {
    Reference(RtReclaimer<T>),
    Sharded(ShardedReclaimer<T>),
}

impl<T> Reclaimer<T> {
    /// Creates a reclaimer on `backend` waiting `grace` sweep cycles,
    /// sized for `cores` cores.
    pub fn new(backend: ReclaimBackend, grace: u64, cores: usize) -> Self {
        Reclaimer {
            engine: match backend {
                ReclaimBackend::Reference => Engine::Reference(RtReclaimer::new(grace)),
                ReclaimBackend::Sharded => Engine::Sharded(ShardedReclaimer::new(grace, cores)),
            },
        }
    }

    /// [`new`](Self::new) with the build's default backend.
    pub fn with_default_backend(grace: u64, cores: usize) -> Self {
        Self::new(ReclaimBackend::default(), grace, cores)
    }

    /// The engine this instance runs.
    pub fn backend(&self) -> ReclaimBackend {
        match self.engine {
            Engine::Reference(_) => ReclaimBackend::Reference,
            Engine::Sharded(_) => ReclaimBackend::Sharded,
        }
    }

    /// Parks `item` until every core has swept `grace` more times.
    pub fn defer(&self, registry: &RtRegistry, core: usize, item: T) {
        match &self.engine {
            Engine::Reference(r) => r.defer(registry, item),
            Engine::Sharded(s) => s.defer(registry, core, item),
        }
    }

    /// Collects every due item visible to `core` (everything for the
    /// reference engine, `core`'s shard for the sharded one).
    pub fn collect(&self, registry: &RtRegistry, core: usize) -> Vec<T> {
        let mut out = Vec::new();
        self.collect_into(registry, core, &mut out);
        out
    }

    /// Allocation-free [`collect`](Self::collect): appends to `out`.
    pub fn collect_into(&self, registry: &RtRegistry, core: usize, out: &mut Vec<T>) {
        match &self.engine {
            Engine::Reference(r) => r.collect_into(registry, out),
            Engine::Sharded(s) => s.collect_into(registry, core, out),
        }
    }

    /// Items still parked.
    pub fn pending_count(&self) -> usize {
        match &self.engine {
            Engine::Reference(r) => r.pending_count(),
            Engine::Sharded(s) => s.pending_count(),
        }
    }

    /// Reclamation debt: items parked awaiting their grace period — the
    /// real-thread analogue of the simulator's per-node debt ledger.
    /// Harnesses splice it into a registry snapshot with
    /// [`RtStats::with_reclaim_debt`](crate::rt::RtStats::with_reclaim_debt).
    pub fn debt(&self) -> u64 {
        self.pending_count() as u64
    }

    /// Memory-pressure expedition: force-refreshes the cached reclamation
    /// frontier so items parked behind a *stale* cache become collectable
    /// now instead of at the next laggard announce or periodic refresh.
    /// Safety is unchanged — the frontier never passes the slowest live
    /// core's tick, so only debt that was already safe is released early.
    /// Returns the frontier after the push.
    pub fn expedite(&self, registry: &RtRegistry) -> u64 {
        registry.advance_frontier()
    }

    /// Drains everything unconditionally (shutdown).
    pub fn drain_all(&self) -> Vec<T> {
        match &self.engine {
            Engine::Reference(r) => r.drain_all(),
            Engine::Sharded(s) => s.drain_all(),
        }
    }

    /// The current grace period in sweep cycles.
    pub fn grace(&self) -> u64 {
        match &self.engine {
            Engine::Reference(r) => r.grace(),
            Engine::Sharded(s) => s.grace(),
        }
    }

    /// Retargets the grace period on either engine (adaptive tuning).
    pub fn set_grace(&self, grace: u64) {
        match &self.engine {
            Engine::Reference(r) => r.set_grace(grace),
            Engine::Sharded(s) => s.set_grace(grace),
        }
    }

    /// Retargets the sharded engine's calendar size; a no-op on the
    /// reference engine (its queue has no wheel).
    pub fn set_wheel_slots(&self, slots: usize) {
        if let Engine::Sharded(s) = &self.engine {
            s.set_wheel_slots(slots);
        }
    }

    /// The sharded engine's wheel-size target (0 for the reference
    /// engine, which has no calendar).
    pub fn wheel_slots(&self) -> usize {
        match &self.engine {
            Engine::Reference(_) => 0,
            Engine::Sharded(s) => s.wheel_slots(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grace_gates_on_slowest_core() {
        let registry = RtRegistry::new(3, 8);
        let rec: RtReclaimer<u32> = RtReclaimer::new(2);
        rec.defer(&registry, 1);
        // Two cores race ahead; the third never sweeps.
        for _ in 0..10 {
            registry.sweep(0);
            registry.sweep(1);
        }
        assert!(rec.collect(&registry).is_empty(), "slowest core gates");
        registry.sweep(2);
        registry.sweep(2);
        assert_eq!(rec.collect(&registry), vec![1]);
    }

    #[test]
    fn never_sweeping_core_pins_frontier_forever() {
        // The liveness assumption documented on RtReclaimer: one core
        // that never sweeps pins min_tick() at 0 and parks every
        // deferred item forever, no matter how far the others run ahead.
        let registry = RtRegistry::new(4, 8);
        let rec: RtReclaimer<u32> = RtReclaimer::new(2);
        rec.defer(&registry, 7);
        for _ in 0..1000 {
            registry.sweep(0);
            registry.sweep(1);
            registry.sweep(2);
            // Core 3 never sweeps.
        }
        assert_eq!(registry.min_tick(), 0, "straggler pins the frontier");
        assert!(rec.collect(&registry).is_empty());
        assert_eq!(rec.pending_count(), 1);

        // Items deferred mid-stall park behind the same frontier.
        rec.defer(&registry, 8);
        assert!(rec.collect(&registry).is_empty());
        assert_eq!(rec.pending_count(), 2);

        // Only the straggler itself can unpin reclamation.
        registry.sweep(3);
        assert!(rec.collect(&registry).is_empty(), "one tick < grace of 2");
        registry.sweep(3);
        assert_eq!(rec.collect(&registry), vec![7, 8]);
        assert_eq!(rec.pending_count(), 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let registry = RtRegistry::new(1, 8);
        let rec: RtReclaimer<u32> = RtReclaimer::new(1);
        rec.defer(&registry, 1);
        registry.sweep(0);
        rec.defer(&registry, 2);
        registry.sweep(0);
        assert_eq!(rec.collect(&registry), vec![1, 2]);
    }

    #[test]
    fn drain_all_ignores_grace() {
        let registry = RtRegistry::new(2, 8);
        let rec: RtReclaimer<&str> = RtReclaimer::new(2);
        rec.defer(&registry, "a");
        rec.defer(&registry, "b");
        assert_eq!(rec.pending_count(), 2);
        assert_eq!(rec.drain_all(), vec!["a", "b"]);
        assert_eq!(rec.pending_count(), 0);
    }

    #[test]
    fn sharded_grace_gates_on_slowest_core() {
        let registry = RtRegistry::new(3, 8);
        let rec: ShardedReclaimer<u32> = ShardedReclaimer::new(2, 3);
        rec.defer(&registry, 0, 1);
        for _ in 0..10 {
            registry.sweep(0);
            registry.sweep(1);
        }
        assert!(
            rec.collect(&registry, 0).is_empty(),
            "core 2 never swept: the cached frontier must still gate"
        );
        registry.sweep(2);
        registry.sweep(2);
        assert_eq!(rec.collect(&registry, 0), vec![1]);
        assert_eq!(rec.pending_count(), 0);
    }

    #[test]
    fn sharded_collect_only_drains_the_callers_shard() {
        let registry = RtRegistry::new(2, 8);
        let rec: ShardedReclaimer<u32> = ShardedReclaimer::new(1, 2);
        rec.defer(&registry, 0, 10);
        rec.defer(&registry, 1, 11);
        registry.sweep(0);
        registry.sweep(1);
        registry.advance_frontier();
        assert_eq!(rec.collect(&registry, 0), vec![10]);
        assert_eq!(rec.pending_count(), 1, "core 1's item stays parked");
        assert_eq!(rec.collect(&registry, 1), vec![11]);
    }

    #[test]
    fn sharded_far_future_dues_overflow_and_return() {
        // A single core races 20 ticks ahead of a fresh shard: the due
        // lands beyond the calendar horizon and must take the overflow
        // path, then come back in order once the frontier catches up.
        let registry = RtRegistry::new(1, 8);
        let rec: ShardedReclaimer<u32> = ShardedReclaimer::new(2, 1);
        for _ in 0..20 {
            registry.sweep(0);
        }
        rec.defer(&registry, 0, 7); // due 22, next_due 0: overflow
        rec.defer(&registry, 0, 8);
        assert_eq!(rec.pending_count(), 2);
        assert!(rec.collect(&registry, 0).is_empty(), "due 22 > frontier 20");
        registry.sweep(0);
        registry.sweep(0);
        assert_eq!(rec.collect(&registry, 0), vec![7, 8]);
        // The shard window is re-anchored: a fresh defer uses the wheel.
        rec.defer(&registry, 0, 9);
        registry.sweep(0);
        registry.sweep(0);
        assert_eq!(rec.collect(&registry, 0), vec![9]);
    }

    #[test]
    fn sharded_drain_all_ignores_grace_and_stays_usable() {
        let registry = RtRegistry::new(2, 8);
        let rec: ShardedReclaimer<&str> = ShardedReclaimer::new(2, 2);
        rec.defer(&registry, 0, "a");
        rec.defer(&registry, 1, "b");
        let mut drained = rec.drain_all();
        drained.sort_unstable();
        assert_eq!(drained, vec!["a", "b"]);
        assert_eq!(rec.pending_count(), 0);
        rec.defer(&registry, 0, "c");
        for _ in 0..2 {
            registry.sweep(0);
            registry.sweep(1);
        }
        assert_eq!(rec.collect(&registry, 0), vec!["c"]);
    }

    #[test]
    fn sharded_never_collects_before_the_reference_scan_allows() {
        // Cross-check against ground truth on a mixed schedule: anything
        // the sharded engine hands back must satisfy min_tick ≥ its due.
        let registry = RtRegistry::new(4, 8);
        let rec: ShardedReclaimer<(u32, u64)> = ShardedReclaimer::new(2, 4);
        let mut handed_back = 0;
        for round in 0..50u32 {
            let core = (round % 4) as usize;
            let due = registry.tick_of(core) + 2;
            rec.defer(&registry, core, (round, due));
            for c in 0..4 {
                if !(round + c as u32).is_multiple_of(3) {
                    registry.sweep(c);
                }
            }
            for c in 0..4 {
                for (_, due) in rec.collect(&registry, c) {
                    assert!(registry.min_tick() >= due, "reclaimed early");
                    handed_back += 1;
                }
            }
        }
        assert!(handed_back > 0, "schedule must actually reclaim");
    }

    #[test]
    fn selectable_backend_defaults_follow_the_feature() {
        let expected = if cfg!(feature = "reference") {
            ReclaimBackend::Reference
        } else {
            ReclaimBackend::Sharded
        };
        assert_eq!(ReclaimBackend::default(), expected);
        let rec: Reclaimer<u32> = Reclaimer::with_default_backend(2, 2);
        assert_eq!(rec.backend(), expected);
    }

    #[test]
    fn selectable_front_runs_both_engines() {
        for backend in [ReclaimBackend::Reference, ReclaimBackend::Sharded] {
            let registry = RtRegistry::new(2, 8);
            let rec: Reclaimer<u32> = Reclaimer::new(backend, 2, 2);
            rec.defer(&registry, 0, 5);
            assert!(rec.collect(&registry, 0).is_empty());
            for _ in 0..2 {
                registry.sweep(0);
                registry.sweep(1);
            }
            assert_eq!(rec.collect(&registry, 0), vec![5], "{backend:?}");
            rec.defer(&registry, 1, 6);
            assert_eq!(rec.pending_count(), 1);
            assert_eq!(rec.drain_all(), vec![6], "{backend:?}");
        }
    }

    #[test]
    fn excluded_core_stops_pinning_reference_reclamation() {
        // The robustness counterpart of
        // `never_sweeping_core_pins_frontier_forever`: once the dead core
        // is excluded, the live minimum gates instead and items flow.
        let registry = RtRegistry::new(4, 8);
        let rec: RtReclaimer<u32> = RtReclaimer::new(2);
        rec.defer(&registry, 7);
        for _ in 0..10 {
            registry.sweep(0);
            registry.sweep(1);
            registry.sweep(2);
            // Core 3 never sweeps.
        }
        assert!(rec.collect(&registry).is_empty(), "pinned pre-exclusion");
        registry.exclude_core(3);
        assert_eq!(rec.collect(&registry), vec![7]);
        // Items deferred while excluded anchor to the live minimum: the
        // live cores must still sweep `grace` more times.
        rec.defer(&registry, 8);
        assert!(rec.collect(&registry).is_empty());
        for _ in 0..2 {
            registry.sweep(0);
            registry.sweep(1);
            registry.sweep(2);
        }
        assert_eq!(rec.collect(&registry), vec![8]);
    }

    #[test]
    fn excluded_core_stops_pinning_sharded_reclamation() {
        let registry = RtRegistry::new(4, 8);
        let rec: ShardedReclaimer<u32> = ShardedReclaimer::new(2, 4);
        rec.defer(&registry, 0, 1);
        for _ in 0..10 {
            registry.sweep(0);
            registry.sweep(1);
            registry.sweep(2);
        }
        assert!(rec.collect(&registry, 0).is_empty(), "core 3 pins");
        registry.exclude_core(3);
        assert_eq!(rec.collect(&registry, 0), vec![1]);
    }

    #[test]
    fn defer_from_a_stale_excluded_core_is_never_already_due() {
        // A core that was excluded (tick frozen at 0) but keeps calling
        // defer before it flushes/rejoins: the due must clamp up to the
        // frontier, not land already-collectable.
        let registry = RtRegistry::new(2, 8);
        let rec: ShardedReclaimer<u32> = ShardedReclaimer::new(2, 2);
        for _ in 0..10 {
            registry.sweep(0);
        }
        registry.exclude_core(1);
        assert!(registry.cached_frontier() >= 10);
        rec.defer(&registry, 1, 42); // tick_of(1) == 0, frontier ≥ 10
        assert!(
            rec.collect(&registry, 1).is_empty(),
            "due clamps to frontier + grace, not tick + grace"
        );
        // After the live core sweeps out the grace, it becomes due.
        for _ in 0..3 {
            registry.sweep(0);
        }
        registry.advance_frontier();
        assert_eq!(rec.collect(&registry, 1), vec![42]);
    }

    #[test]
    fn retuned_grace_applies_to_new_defers_only() {
        let registry = RtRegistry::new(1, 8);
        let rec: RtReclaimer<u32> = RtReclaimer::new(4);
        rec.defer(&registry, 1); // due 4
        rec.set_grace(1);
        assert_eq!(rec.grace(), 1);
        rec.defer(&registry, 2); // due 1
        registry.sweep(0);
        // Item 1's recorded due (4) still gates it; the queue is FIFO so
        // item 2 parks behind it — conservative, never early.
        assert!(rec.collect(&registry).is_empty());
        for _ in 0..3 {
            registry.sweep(0);
        }
        assert_eq!(rec.collect(&registry), vec![1, 2]);
    }

    #[test]
    fn wheel_resize_preserves_dues_both_directions() {
        let registry = RtRegistry::new(1, 8);
        let rec: ShardedReclaimer<u32> = ShardedReclaimer::new(2, 1);
        assert_eq!(rec.wheel_slots(), DEFAULT_WHEEL_SLOTS);
        // Park items across the window and beyond it.
        for _ in 0..4 {
            registry.sweep(0);
        }
        rec.defer(&registry, 0, 1); // due 6, in-window
        for _ in 0..16 {
            registry.sweep(0);
        }
        rec.defer(&registry, 0, 2); // due 22
                                    // Widen: overflow items within the new horizon move into the
                                    // wheel with dues intact; item 1 (due 6 ≤ frontier 20) is due,
                                    // item 2 (due 22) is not.
        rec.set_wheel_slots(64);
        let mut got = rec.collect(&registry, 0);
        assert_eq!(got, vec![1]);
        // Shrink below the spread: wheel items past the new horizon move
        // back to overflow, dues still intact.
        rec.set_wheel_slots(2);
        assert_eq!(rec.wheel_slots(), 2);
        assert_eq!(rec.pending_count(), 1);
        for _ in 0..8 {
            registry.sweep(0);
        }
        registry.advance_frontier();
        got.extend(rec.collect(&registry, 0));
        assert_eq!(got, vec![1, 2], "every item survives both resizes");
        assert_eq!(rec.pending_count(), 0);
    }

    #[test]
    fn wheel_resize_is_clamped() {
        let rec: ShardedReclaimer<u32> = ShardedReclaimer::new(2, 1);
        rec.set_wheel_slots(0);
        assert_eq!(rec.wheel_slots(), 1);
        rec.set_wheel_slots(1 << 20);
        assert_eq!(rec.wheel_slots(), MAX_WHEEL_SLOTS);
    }

    #[test]
    fn reclaimer_front_tunes_both_engines() {
        for backend in [ReclaimBackend::Reference, ReclaimBackend::Sharded] {
            let rec: Reclaimer<u32> = Reclaimer::new(backend, 2, 2);
            assert_eq!(rec.grace(), 2);
            rec.set_grace(5);
            assert_eq!(rec.grace(), 5, "{backend:?}");
            rec.set_wheel_slots(32);
            match backend {
                ReclaimBackend::Sharded => assert_eq!(rec.wheel_slots(), 32),
                ReclaimBackend::Reference => assert_eq!(rec.wheel_slots(), 0),
            }
        }
    }

    #[test]
    fn concurrent_defer_collect_smoke() {
        let registry = Arc::new(RtRegistry::new(2, 8));
        let rec: Arc<RtReclaimer<u64>> = Arc::new(RtReclaimer::new(2));
        let total = 1000u64;
        let producer = {
            let (reg, rec) = (Arc::clone(&registry), Arc::clone(&rec));
            std::thread::spawn(move || {
                for i in 0..total {
                    rec.defer(&reg, i);
                }
            })
        };
        let ticker = {
            let reg = Arc::clone(&registry);
            std::thread::spawn(move || {
                for _ in 0..64 {
                    reg.sweep(0);
                    reg.sweep(1);
                    std::thread::yield_now();
                }
            })
        };
        producer.join().unwrap();
        ticker.join().unwrap();
        let mut got = Vec::new();
        // A few final cycles so everything becomes due.
        for _ in 0..4 {
            registry.sweep(0);
            registry.sweep(1);
        }
        got.extend(rec.collect(&registry));
        assert_eq!(got.len() as u64 + rec.pending_count() as u64, total);
        assert_eq!(rec.pending_count(), 0, "all items should be due by now");
    }

    #[test]
    fn debt_tracks_parked_items_on_both_engines() {
        for backend in [ReclaimBackend::Reference, ReclaimBackend::Sharded] {
            let registry = RtRegistry::new(2, 8);
            let rec: Reclaimer<u32> = Reclaimer::new(backend, 2, 2);
            assert_eq!(rec.debt(), 0);
            rec.defer(&registry, 0, 1);
            rec.defer(&registry, 1, 2);
            assert_eq!(rec.debt(), 2, "{backend:?}: parked items are debt");
            for _ in 0..3 {
                registry.sweep(0);
                registry.sweep(1);
            }
            let mut got = rec.collect(&registry, 0);
            got.extend(rec.collect(&registry, 1));
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
            assert_eq!(rec.debt(), 0, "{backend:?}: collected debt is settled");
        }
    }

    #[test]
    fn expedite_releases_debt_parked_behind_a_stale_frontier() {
        let registry = RtRegistry::new(2, 8);
        let rec: Reclaimer<u32> = Reclaimer::with_default_backend(2, 2);
        rec.defer(&registry, 0, 9);
        // Both cores sweep past the grace period, but without announcing:
        // the cached frontier stays at 0, so the item stays parked even
        // though every core's tick says it is safe.
        let mut sink = Vec::new();
        for _ in 0..4 {
            registry.sweep_into_unannounced(0, &mut sink);
            registry.sweep_into_unannounced(1, &mut sink);
        }
        assert!(
            rec.collect(&registry, 0).is_empty(),
            "stale cached frontier holds safe debt"
        );
        assert_eq!(rec.debt(), 1);
        // Memory pressure force-refreshes the cache; the debt flows out
        // with no further sweeps.
        assert!(rec.expedite(&registry) >= 3);
        assert_eq!(rec.collect(&registry, 0), vec![9]);
        assert_eq!(rec.debt(), 0);
    }

    #[test]
    fn stats_snapshot_carries_spliced_reclaim_debt() {
        let registry = RtRegistry::new(1, 8);
        let rec: Reclaimer<u32> = Reclaimer::with_default_backend(4, 1);
        rec.defer(&registry, 0, 1);
        rec.defer(&registry, 0, 2);
        assert_eq!(registry.stats().reclaim_debt, 0, "registry alone: unfilled");
        let st = registry.stats().with_reclaim_debt(rec.debt());
        assert_eq!(st.reclaim_debt, 2);
    }
}
