//! # rt — the lock-free Latr runtime
//!
//! A real, multi-threaded implementation of the paper's data structures,
//! suitable for user-space systems that want *lazy invalidation with
//! bounded staleness*: per-"core" cyclic queues of invalidation states
//! ([`RtQueue`]), an all-queues registry with tick-based sweeping
//! ([`RtRegistry`]), and deferred reclamation gated on every participant
//! having swept ([`RtReclaimer`]).
//!
//! The criterion benches in `latr-bench` measure these primitives to
//! reproduce Table 5's costs (state save ≈ 130 ns, sweep ≈ 160 ns) against
//! a synchronous cross-thread "IPI" baseline.
//!
//! ```
//! use latr_core::rt::{RtRegistry, RtInvalidation};
//!
//! let registry = RtRegistry::new(4, 64); // 4 cores, 64 states each
//! // Core 0 lazily invalidates a range for cores 1..4.
//! registry
//!     .publish(0, RtInvalidation { mm: 7, start: 0x1000, end: 0x2000 }, 0b1110)
//!     .unwrap();
//! // Core 2 sweeps at its "tick": it learns what to invalidate locally.
//! let work = registry.sweep(2);
//! assert_eq!(work.len(), 1);
//! assert_eq!(work[0].mm, 7);
//! ```

pub mod frontier;
mod mask;
mod pad;
mod queue;
mod reclaim;
mod soft_tlb;
pub mod sync;
pub mod tuning;

pub use frontier::{FrontierWatchdog, ReclaimFrontier};
pub use mask::AtomicCpuMask;
pub use pad::CachePadded;
pub use queue::{PublishError, RtInvalidation, RtQueue, RtRegistry, RtStats, SweepGuard, NO_SLOT};
pub use reclaim::{
    ReclaimBackend, Reclaimer, RtReclaimer, ShardedReclaimer, DEFAULT_WHEEL_SLOTS, MAX_WHEEL_SLOTS,
};
pub use soft_tlb::{SoftTlb, SoftTlbTable, SweepMode};
pub use tuning::{RtTuner, RtTuningConfig, TuningReport};
