//! A software TLB: the demonstration client of the rt primitives.
//!
//! [`SoftTlbTable`] plays the page table (a shared key→value map);
//! [`SoftTlb`] plays one core's TLB (a private cache of lookups). Unmap
//! publishes a Latr state instead of interrupting the other threads; each
//! thread drops its stale cache entries at its next
//! [`tick`](SoftTlb::tick) — exactly the paper's flow, with "bounded
//! staleness between ticks" as the observable semantics: a stale hit
//! returns the *old* value (never garbage), and after one full tick cycle
//! the entry is gone everywhere.

use crate::rt::queue::{PublishError, RtInvalidation, RtRegistry};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The shared mapping table ("page table").
#[derive(Debug)]
pub struct SoftTlbTable {
    registry: Arc<RtRegistry>,
    map: RwLock<HashMap<u64, u64>>,
}

impl SoftTlbTable {
    /// Creates a table whose invalidations flow through `registry`.
    pub fn new(registry: Arc<RtRegistry>) -> Self {
        SoftTlbTable {
            registry,
            map: RwLock::new(HashMap::new()),
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<RtRegistry> {
        &self.registry
    }

    /// Installs (or replaces) a mapping.
    pub fn map_key(&self, key: u64, value: u64) {
        self.map.write().insert(key, value);
    }

    /// Authoritative lookup (the "page walk").
    pub fn walk(&self, key: u64) -> Option<u64> {
        self.map.read().get(&key).copied()
    }

    /// Lazily unmaps `key` on behalf of `core`: removes it from the table
    /// and publishes an invalidation for every other core. Returns the old
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] when `core`'s state queue is full; the
    /// mapping is *not* removed in that case, so the caller can retry or
    /// invalidate synchronously.
    pub fn unmap_lazy(&self, core: usize, key: u64) -> Result<Option<u64>, PublishError> {
        // Publish first: if the queue is full we must not remove the
        // mapping without a pending invalidation.
        self.registry.publish_broadcast(
            core,
            RtInvalidation {
                mm: 0,
                start: key,
                end: key + 1,
            },
        )?;
        Ok(self.map.write().remove(&key))
    }
}

/// How a [`SoftTlb`] sweeps at its tick.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SweepMode {
    /// [`RtRegistry::sweep_into`]: the reference full scan of every
    /// core's queue.
    #[default]
    FullScan,
    /// [`RtRegistry::sweep_pending_into`]: drain the pending row and
    /// visit only the flagged queues — the scaling path.
    Pending,
}

/// One thread's software TLB.
#[derive(Debug)]
pub struct SoftTlb {
    core: usize,
    table: Arc<SoftTlbTable>,
    cache: HashMap<u64, u64>,
    sweep_mode: SweepMode,
    /// Reused across ticks so the tick loop allocates nothing.
    scratch: Vec<RtInvalidation>,
    hits: u64,
    misses: u64,
    stale_hits_possible: u64,
}

impl SoftTlb {
    /// Creates the cache for `core` (reference full-scan sweep).
    pub fn new(core: usize, table: Arc<SoftTlbTable>) -> Self {
        SoftTlb {
            core,
            table,
            cache: HashMap::new(),
            sweep_mode: SweepMode::default(),
            scratch: Vec::new(),
            hits: 0,
            misses: 0,
            stale_hits_possible: 0,
        }
    }

    /// Selects how [`tick`](Self::tick) sweeps.
    pub fn with_sweep_mode(mut self, mode: SweepMode) -> Self {
        self.sweep_mode = mode;
        self
    }

    /// Looks `key` up, consulting the private cache first (a cached entry
    /// may be stale until the next [`tick`](Self::tick) — bounded
    /// staleness, §4.4).
    pub fn lookup(&mut self, key: u64) -> Option<u64> {
        if let Some(&v) = self.cache.get(&key) {
            self.hits += 1;
            return Some(v);
        }
        self.misses += 1;
        let v = self.table.walk(key)?;
        self.cache.insert(key, v);
        Some(v)
    }

    /// The scheduler-tick hook: sweeps the registry and drops every cached
    /// key named by an invalidation. Returns how many entries were
    /// dropped. Allocation-free in steady state: the sweep reuses one
    /// scratch buffer for the whole lifetime of the TLB.
    ///
    /// Robustness behavior: the sweep runs under a [`SweepGuard`] (a
    /// panic mid-sweep poisons only this core), and if this core was
    /// excluded (watchdog stall or poison) the whole cache is flushed
    /// before it [`rejoin`]s — while excluded its invalidations were
    /// reaped undelivered, so every cached entry is suspect. That flush
    /// is the "leak, never corrupt" contract's second half.
    ///
    /// [`SweepGuard`]: crate::rt::SweepGuard
    /// [`rejoin`]: RtRegistry::rejoin
    pub fn tick(&mut self) -> usize {
        self.tick_inner(true)
    }

    /// [`tick`](Self::tick) without the frontier announce — the
    /// delayed-announce fault: invalidations are still applied and the
    /// tick still counts, but the cached frontier learns of it only via
    /// other cores' forced refreshes.
    pub fn tick_unannounced(&mut self) -> usize {
        self.tick_inner(false)
    }

    // Hot-path root: point invalidation + sweep; allocation-free in
    // steady state (the scratch buffer is reused across ticks).
    #[latr::hot_path]
    fn tick_inner(&mut self, announce: bool) -> usize {
        let registry = self.table.registry();
        let mut flushed = 0;
        if registry.has_exclusions() && registry.is_excluded(self.core) {
            // Flush-before-rejoin: every entry cached before/through the
            // exclusion window may be stale (its invalidation was reaped).
            flushed = self.cache.len();
            self.cache.clear();
            registry.rejoin(self.core);
        }
        let mut work = std::mem::take(&mut self.scratch);
        work.clear();
        let guard = registry.sweep_guard(self.core);
        match (self.sweep_mode, announce) {
            (SweepMode::FullScan, true) => registry.sweep_into(self.core, &mut work),
            (SweepMode::FullScan, false) => registry.sweep_into_unannounced(self.core, &mut work),
            (SweepMode::Pending, true) => registry.sweep_pending_into(self.core, &mut work),
            (SweepMode::Pending, false) => {
                registry.sweep_pending_into_unannounced(self.core, &mut work)
            }
        }
        let mut dropped = flushed;
        for inv in &work {
            if inv.end == inv.start + 1 {
                // Point invalidation (the common case for unmap_lazy):
                // O(1) instead of a full-cache scan.
                dropped += usize::from(self.cache.remove(&inv.start).is_some());
            } else {
                let before = self.cache.len();
                self.cache.retain(|&k, _| !(k >= inv.start && k < inv.end));
                dropped += before - self.cache.len();
            }
            self.stale_hits_possible += 1;
        }
        guard.complete();
        self.scratch = work;
        dropped
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries currently cached.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cores: usize) -> (Arc<SoftTlbTable>, Vec<SoftTlb>) {
        let registry = Arc::new(RtRegistry::new(cores, 64));
        let table = Arc::new(SoftTlbTable::new(registry));
        let tlbs = (0..cores)
            .map(|c| SoftTlb::new(c, Arc::clone(&table)))
            .collect();
        (table, tlbs)
    }

    #[test]
    fn lookup_caches_and_hits() {
        let (table, mut tlbs) = setup(2);
        table.map_key(10, 100);
        assert_eq!(tlbs[0].lookup(10), Some(100));
        assert_eq!(tlbs[0].lookup(10), Some(100));
        assert_eq!(tlbs[0].hits(), 1);
        assert_eq!(tlbs[0].misses(), 1);
        assert_eq!(tlbs[0].lookup(99), None);
    }

    #[test]
    fn lazy_unmap_leaves_bounded_staleness() {
        let (table, mut tlbs) = setup(2);
        table.map_key(10, 100);
        // Both cores cache the mapping.
        assert_eq!(tlbs[0].lookup(10), Some(100));
        assert_eq!(tlbs[1].lookup(10), Some(100));

        // Core 0 unmaps lazily.
        assert_eq!(table.unmap_lazy(0, 10).unwrap(), Some(100));

        // Before core 1 ticks: stale hit returns the OLD value.
        assert_eq!(tlbs[1].lookup(10), Some(100));

        // After the tick the entry is gone and lookups miss.
        assert_eq!(tlbs[1].tick(), 1);
        assert_eq!(tlbs[1].lookup(10), None);
    }

    #[test]
    fn unmapper_core_is_not_in_the_mask() {
        let (table, mut tlbs) = setup(2);
        table.map_key(5, 50);
        tlbs[0].lookup(5);
        table.unmap_lazy(0, 5).unwrap();
        // The initiator invalidates locally itself in the kernel; here the
        // sweep simply has nothing addressed to core 0.
        assert_eq!(tlbs[0].tick(), 0);
    }

    #[test]
    fn overflow_keeps_mapping_intact() {
        let registry = Arc::new(RtRegistry::new(2, 1));
        let table = Arc::new(SoftTlbTable::new(registry));
        table.map_key(1, 10);
        table.map_key(2, 20);
        assert!(table.unmap_lazy(0, 1).is_ok());
        // Queue (capacity 1) is now full: unmap must fail AND keep the
        // mapping.
        assert_eq!(table.unmap_lazy(0, 2), Err(PublishError));
        assert_eq!(table.walk(2), Some(20));
    }

    #[test]
    fn pending_sweep_mode_matches_the_full_scan() {
        let registry = Arc::new(RtRegistry::new(2, 64));
        let table = Arc::new(SoftTlbTable::new(registry));
        table.map_key(10, 100);
        table.map_key(11, 110);
        let mut tlb = SoftTlb::new(1, Arc::clone(&table)).with_sweep_mode(SweepMode::Pending);
        assert_eq!(tlb.lookup(10), Some(100));
        assert_eq!(tlb.lookup(11), Some(110));
        table.unmap_lazy(0, 10).unwrap();
        assert_eq!(tlb.lookup(10), Some(100), "stale until the tick");
        assert_eq!(tlb.tick(), 1);
        assert_eq!(tlb.lookup(10), None);
        assert_eq!(tlb.lookup(11), Some(110), "unrelated entry survives");
        assert_eq!(tlb.tick(), 0, "pending row drained: nothing to visit");
    }

    #[test]
    fn excluded_tlb_flushes_everything_and_rejoins_on_tick() {
        let (table, mut tlbs) = setup(2);
        table.map_key(10, 100);
        table.map_key(11, 110);
        assert_eq!(tlbs[1].lookup(10), Some(100));
        assert_eq!(tlbs[1].lookup(11), Some(110));

        // Core 1 is declared dead; its pending invalidation is reaped.
        table.unmap_lazy(0, 10).unwrap();
        table.registry().exclude_core(1);
        assert_eq!(table.registry().stats().reaped_states, 1);

        // Its next tick must drop the WHOLE cache (both entries — it can't
        // know which invalidations it missed) and rejoin the frontier.
        assert_eq!(tlbs[1].tick(), 2);
        assert_eq!(tlbs[1].cached(), 0);
        assert!(!table.registry().is_excluded(1));
        assert_eq!(table.registry().stats().rejoins, 1);
        // Coherent again: the unmapped key misses, the live one re-walks.
        assert_eq!(tlbs[1].lookup(10), None);
        assert_eq!(tlbs[1].lookup(11), Some(110));
    }

    #[test]
    fn unannounced_tick_still_applies_invalidations() {
        let (table, mut tlbs) = setup(2);
        table.map_key(10, 100);
        assert_eq!(tlbs[1].lookup(10), Some(100));
        table.unmap_lazy(0, 10).unwrap();
        assert_eq!(tlbs[1].tick_unannounced(), 1);
        assert_eq!(tlbs[1].lookup(10), None);
        assert_eq!(
            table.registry().cached_frontier(),
            0,
            "announce was delayed"
        );
        assert_eq!(table.registry().tick_of(1), 1, "the tick still counted");
    }

    #[test]
    fn concurrent_readers_never_see_garbage() {
        use crate::rt::sync::atomic::{AtomicBool, Ordering};
        let cores = 4;
        let registry = Arc::new(RtRegistry::new(cores, 256));
        let table = Arc::new(SoftTlbTable::new(registry));
        for k in 0..64 {
            table.map_key(k, 1000 + k);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (1..cores)
            .map(|core| {
                let table = Arc::clone(&table);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut tlb = SoftTlb::new(core, table);
                    let mut iterations = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for k in 0..64 {
                            if let Some(v) = tlb.lookup(k) {
                                // Stale or fresh, the value must be the one
                                // that was mapped — never garbage.
                                assert_eq!(v, 1000 + k);
                            }
                        }
                        tlb.tick();
                        iterations += 1;
                    }
                    iterations
                })
            })
            .collect();
        // Core 0 unmaps and remaps keys continuously.
        for round in 0..200 {
            let k = round % 64;
            while table.unmap_lazy(0, k).is_err() {
                // Queue full: let the sweepers drain.
                std::thread::yield_now();
            }
            table.map_key(k, 1000 + k);
        }
        stop.store(true, Ordering::Relaxed);
        // The per-lookup assertions inside the reader loops are the test;
        // join only propagates their panics.
        for r in readers {
            let _iterations = r.join().unwrap();
        }
    }
}
