//! Synchronization shim: `std`/`parking_lot` normally, **loom** under
//! `--cfg loom`.
//!
//! The rt primitives ([`RtQueue`](crate::rt::RtQueue),
//! [`AtomicCpuMask`](crate::rt::AtomicCpuMask),
//! [`RtReclaimer`](crate::rt::RtReclaimer)) import their atomics and
//! locks from here instead of `std::sync` directly, so the exact same
//! source compiles in two worlds:
//!
//! * **Normal builds**: zero-cost re-exports of `std::sync::atomic` and
//!   `parking_lot`.
//! * **Model-checking builds** (`RUSTFLAGS="--cfg loom" cargo test -p
//!   latr-core --test loom`): every atomic operation and lock
//!   acquisition becomes a scheduling point, letting the loom tests in
//!   `crates/core/tests/loom.rs` exhaustively explore interleavings of
//!   the publish/sweep/retire and grace-period protocols (bounded by
//!   `LOOM_MAX_PREEMPTIONS`, default 2).
//!
//! The vendored `loom` stand-in models **sequential consistency** only:
//! it finds interleaving bugs (lost updates, double retirement, torn
//! check-then-act), not memory-ordering relaxation bugs. See
//! `third_party/loom` for details.

/// Atomic integer and boolean types plus `Ordering` and `fence`.
pub mod atomic {
    #[cfg(not(loom))]
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(loom)]
    pub use loom::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(loom))]
pub use parking_lot::{Mutex, MutexGuard};

#[cfg(loom)]
pub use loom::sync::{Mutex, MutexGuard};
