//! Lock-free Latr state queues and the all-cores registry.
//!
//! Memory layout follows §4.1: each core owns a cyclic array of states
//! "allocated from a contiguous memory region" so sweeps stream through
//! them with the prefetcher. Publication uses the paper's ordering rule:
//! "an entry is activated after setting all the fields using an atomic
//! instruction coupled with a memory barrier" — here, a release store of
//! the `active` flag after the plain field writes, paired with acquire
//! loads in the sweep.

use crate::rt::frontier::{ReclaimFrontier, REFRESH_TICKS};
use crate::rt::mask::{mask_first_n_except, AtomicCpuMask};
use crate::rt::pad::CachePadded;
use crate::rt::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// The payload of one invalidation: which address space and which virtual
/// byte range must be flushed from the sweeper's local cache/TLB analogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtInvalidation {
    /// Address-space identifier (the `mm` pointer in the kernel).
    pub mm: u64,
    /// First byte of the range.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

/// Publishing failed because every slot is active — the caller must fall
/// back to its synchronous mechanism (IPIs in the kernel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishError;

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latr state queue full; fall back to synchronous shootdown"
        )
    }
}

impl std::error::Error for PublishError {}

/// One slot: the Latr state of §4.1 with an atomic activation flag.
#[derive(Debug)]
struct Slot {
    start: AtomicU64,
    end: AtomicU64,
    mm: AtomicU64,
    cpus: AtomicCpuMask,
    active: AtomicBool,
}

impl Slot {
    fn new() -> Self {
        Slot {
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            mm: AtomicU64::new(0),
            cpus: AtomicCpuMask::new(),
            active: AtomicBool::new(false),
        }
    }
}

/// A single core's cyclic, lock-free queue of Latr states.
///
/// Single-publisher (the owning core), multi-clearer (every sweeping
/// core). An `active` counter lets sweeps skip idle queues with a single
/// load — the contiguous-and-cheap sweep §4.1 relies on.
#[derive(Debug)]
pub struct RtQueue {
    slots: Box<[Slot]>,
    // Head and active counter each own a cache line: the publisher's
    // head bump must not invalidate the line every sweeper polls for the
    // idle-queue fast path (and vice versa).
    head: CachePadded<AtomicUsize>,
    active: CachePadded<AtomicUsize>,
}

impl RtQueue {
    /// Creates a queue of `capacity` slots (64 in the paper).
    pub fn new(capacity: usize) -> Self {
        RtQueue {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: CachePadded::new(AtomicUsize::new(0)),
            active: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently active states (racy snapshot).
    pub fn active_count(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Publishes an invalidation for the CPUs in `cpu_words`. Only the
    /// owning core may call this (single producer).
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] when all slots are active; the caller
    /// falls back to its synchronous path.
    pub fn publish(&self, inv: RtInvalidation, cpu_words: [u64; 4]) -> Result<usize, PublishError> {
        let n = self.slots.len();
        let head = self.head.load(Ordering::Relaxed);
        for probe in 0..n {
            let idx = (head + probe) % n;
            let slot = &self.slots[idx];
            if slot.active.load(Ordering::Acquire) {
                continue;
            }
            // Fields first (plain stores)...
            slot.start.store(inv.start, Ordering::Relaxed);
            slot.end.store(inv.end, Ordering::Relaxed);
            slot.mm.store(inv.mm, Ordering::Relaxed);
            slot.cpus.store_words(cpu_words, Ordering::Relaxed);
            // ...then the activation with release ordering (§4.1's barrier).
            self.active.fetch_add(1, Ordering::Release);
            slot.active.store(true, Ordering::Release);
            self.head.store((idx + 1) % n, Ordering::Relaxed);
            return Ok(idx);
        }
        Err(PublishError)
    }

    /// Publishes a batch of same-tick invalidations with **one** memory
    /// barrier instead of one release-store per entry: all fields of all
    /// claimed slots are written plain, a single release fence orders
    /// them, then the activation flags flip. All-or-nothing: either every
    /// entry gets a slot or none does and the caller falls back to its
    /// synchronous path for the whole batch. Only the owning core may
    /// call this (single producer), and `out` receives the claimed slot
    /// indices in batch order.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] when fewer than `batch.len()` slots are
    /// free.
    pub fn publish_batch(
        &self,
        batch: &[(RtInvalidation, [u64; 4])],
        out: &mut Vec<usize>,
    ) -> Result<(), PublishError> {
        out.clear();
        if batch.is_empty() {
            return Ok(());
        }
        let n = self.slots.len();
        if batch.len() > n {
            return Err(PublishError);
        }
        // Claim free slots cyclically from the head. Single producer: a
        // slot observed inactive stays claimable (only we activate), so
        // probing and writing need no CAS.
        let head = self.head.load(Ordering::Relaxed);
        for probe in 0..n {
            let idx = (head + probe) % n;
            if !self.slots[idx].active.load(Ordering::Acquire) {
                out.push(idx);
                if out.len() == batch.len() {
                    break;
                }
            }
        }
        if out.len() < batch.len() {
            out.clear();
            return Err(PublishError);
        }
        for (&idx, (inv, words)) in out.iter().zip(batch) {
            let slot = &self.slots[idx];
            slot.start.store(inv.start, Ordering::Relaxed);
            slot.end.store(inv.end, Ordering::Relaxed);
            slot.mm.store(inv.mm, Ordering::Relaxed);
            slot.cpus.store_words(*words, Ordering::Relaxed);
        }
        self.active.fetch_add(batch.len(), Ordering::Release);
        // The batch's one barrier: a sweeper's acquire load of any
        // activation flag below synchronizes with this fence, making all
        // the plain field writes above visible.
        fence(Ordering::Release);
        for &idx in out.iter() {
            self.slots[idx].active.store(true, Ordering::Relaxed);
        }
        self.head
            .store((out[out.len() - 1] + 1) % n, Ordering::Relaxed);
        Ok(())
    }

    /// Sweeps this queue on behalf of `cpu`: collects every active state
    /// naming it, clears the bit, and retires slots whose masks emptied.
    /// Idle queues cost one atomic load.
    pub fn sweep_for(&self, cpu: usize, out: &mut Vec<RtInvalidation>) {
        if self.active.load(Ordering::Acquire) == 0 {
            return;
        }
        for slot in self.slots.iter() {
            if !slot.active.load(Ordering::Acquire) {
                continue;
            }
            if !slot.cpus.test(cpu, Ordering::Acquire) {
                continue;
            }
            // Read the payload before clearing our bit: once the mask
            // empties the slot may be recycled by the publisher.
            let inv = RtInvalidation {
                mm: slot.mm.load(Ordering::Relaxed),
                start: slot.start.load(Ordering::Relaxed),
                end: slot.end.load(Ordering::Relaxed),
            };
            let (was_set, now_empty) = slot.cpus.clear(cpu);
            if was_set {
                out.push(inv);
                if now_empty {
                    // Last core out retires the state; the CAS makes the
                    // cross-word emptiness race benign — exactly one
                    // retirer decrements the counter.
                    if slot
                        .active
                        .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.active.fetch_sub(1, Ordering::Release);
                    }
                }
            }
        }
    }
}

/// All cores' queues plus per-core tick counters: the complete §4.1
/// structure ("64 Latr states per core, allocated from a contiguous
/// memory region").
#[derive(Debug)]
pub struct RtRegistry {
    queues: Vec<RtQueue>,
    /// Pending-sweep bitmap, one row per target core: bit *q* of row *c*
    /// means "queue *q* may hold a state naming core *c*". Publishers set
    /// bits *after* activating their slots; [`sweep_pending`] drains its
    /// row atomically and visits only the flagged queues. Bits can be
    /// stale-set (a visit that finds nothing) but never stale-clear.
    ///
    /// [`sweep_pending`]: RtRegistry::sweep_pending
    ///
    /// Each row is cache-line-padded: a publisher flagging core A's row
    /// must not ping-pong the line core B drains every tick.
    pending: Box<[CachePadded<AtomicCpuMask>]>,
    /// Per-core tick counters, one cache line each — the hottest state in
    /// the registry (bumped on every sweep, scanned by the frontier).
    ticks: Box<[CachePadded<AtomicU64>]>,
    /// Cached lower bound of [`min_tick`](Self::min_tick), advanced by
    /// sweepers (see [`ReclaimFrontier`]).
    frontier: ReclaimFrontier,
    /// Per-core publish counters (indexed by the publishing core, summed
    /// on read) so the single shared `fetch_add` line disappears from the
    /// publish path.
    saved: Box<[CachePadded<AtomicU64>]>,
    /// Per-core overflow counters, same layout as `saved`.
    overflows: Box<[CachePadded<AtomicU64>]>,
}

impl RtRegistry {
    /// Creates the registry for `cores` cores with `states_per_core` slots
    /// each.
    pub fn new(cores: usize, states_per_core: usize) -> Self {
        RtRegistry {
            queues: (0..cores).map(|_| RtQueue::new(states_per_core)).collect(),
            pending: (0..cores)
                .map(|_| CachePadded::new(AtomicCpuMask::new()))
                .collect(),
            ticks: (0..cores)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            frontier: ReclaimFrontier::new(),
            saved: (0..cores)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            overflows: (0..cores)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Flags `core`'s queue in the pending row of every CPU named in
    /// `target_words`. Must run *after* the slots were activated: the
    /// release `fetch_or` pairs with the sweep's draining swap, so a
    /// sweeper that takes a bit is guaranteed to see the activation.
    fn mark_pending(&self, core: usize, target_words: [u64; 4]) {
        for (w, word) in target_words.into_iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let cpu = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if cpu < self.pending.len() {
                    self.pending[cpu].set_bit(core);
                }
            }
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.queues.len()
    }

    /// One core's queue.
    pub fn queue(&self, core: usize) -> &RtQueue {
        &self.queues[core]
    }

    /// Publishes an invalidation from `core` targeting the CPUs whose bits
    /// are set in `target_bits` (bit *i* of word *w* = CPU `w*64+i`).
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] on queue overflow.
    pub fn publish(
        &self,
        core: usize,
        inv: RtInvalidation,
        target_bits: u64,
    ) -> Result<usize, PublishError> {
        self.publish_wide(core, inv, [target_bits, 0, 0, 0])
    }

    /// [`publish`](Self::publish) with a full 256-bit target mask.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] on queue overflow.
    pub fn publish_wide(
        &self,
        core: usize,
        inv: RtInvalidation,
        target_words: [u64; 4],
    ) -> Result<usize, PublishError> {
        match self.queues[core].publish(inv, target_words) {
            Ok(idx) => {
                self.mark_pending(core, target_words);
                self.saved[core].fetch_add(1, Ordering::Relaxed);
                Ok(idx)
            }
            Err(e) => {
                self.overflows[core].fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Publishes a batch of same-tick invalidations from `core` with a
    /// single barrier (see [`RtQueue::publish_batch`]), then flags the
    /// pending rows of every targeted CPU. All-or-nothing; `out` receives
    /// the claimed slot indices.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] when the batch doesn't fit; the whole
    /// batch falls back to the synchronous path and counts one overflow.
    pub fn publish_batch(
        &self,
        core: usize,
        batch: &[(RtInvalidation, [u64; 4])],
        out: &mut Vec<usize>,
    ) -> Result<(), PublishError> {
        match self.queues[core].publish_batch(batch, out) {
            Ok(()) => {
                for &(_, words) in batch {
                    self.mark_pending(core, words);
                }
                self.saved[core].fetch_add(batch.len() as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.overflows[core].fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Publishes to every core except the initiator.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] on queue overflow.
    pub fn publish_broadcast(
        &self,
        core: usize,
        inv: RtInvalidation,
    ) -> Result<usize, PublishError> {
        self.publish_wide(core, inv, mask_first_n_except(self.cores(), core))
    }

    /// The sweep (§4.1), reference form: scans *every* core's queue for
    /// states naming `core`, clears its bits, bumps its tick counter, and
    /// returns the invalidations the caller must apply locally.
    pub fn sweep(&self, core: usize) -> Vec<RtInvalidation> {
        let mut out = Vec::new();
        self.sweep_into(core, &mut out);
        out
    }

    /// Allocation-free [`sweep`](Self::sweep): appends the invalidations
    /// to `out` (not cleared first) so a tick loop can reuse one buffer
    /// across its whole lifetime.
    pub fn sweep_into(&self, core: usize, out: &mut Vec<RtInvalidation>) {
        for q in &self.queues {
            q.sweep_for(core, out);
        }
        self.finish_sweep(core);
    }

    /// The fast sweep: drains `core`'s pending row and visits only the
    /// flagged queues. Equivalent to [`sweep`](Self::sweep) — a publisher
    /// flags the row only after activating its slots, so every state
    /// naming `core` is covered by a bit; a stale-set bit just costs one
    /// empty queue scan. Bits set concurrently with the drain survive
    /// into the next sweep.
    pub fn sweep_pending(&self, core: usize) -> Vec<RtInvalidation> {
        let mut out = Vec::new();
        self.sweep_pending_into(core, &mut out);
        out
    }

    /// Allocation-free [`sweep_pending`](Self::sweep_pending): appends to
    /// `out` (not cleared first) for buffer reuse in tick loops.
    pub fn sweep_pending_into(&self, core: usize, out: &mut Vec<RtInvalidation>) {
        let row = self.pending[core].take_words();
        for (w, word) in row.into_iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let qi = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if qi < self.queues.len() {
                    self.queues[qi].sweep_for(core, out);
                }
            }
        }
        self.finish_sweep(core);
    }

    /// Bumps `core`'s tick and announces it to the cached frontier:
    /// only a core that may have been the frontier laggard (its pre-bump
    /// tick equalled the cache) re-scans, plus a periodic forced refresh
    /// as the liveness backstop (see [`crate::rt::frontier`]). Every
    /// other sweep costs one padded-line `fetch_add` and one load.
    fn finish_sweep(&self, core: usize) {
        let old = self.ticks[core].fetch_add(1, Ordering::Release);
        if old == self.frontier.get() || (old + 1).is_multiple_of(REFRESH_TICKS) {
            self.advance_frontier();
        }
    }

    /// A core's tick count.
    pub fn tick_of(&self, core: usize) -> u64 {
        self.ticks[core].load(Ordering::Acquire)
    }

    /// The minimum tick across all cores — the reclamation frontier: an
    /// object parked when every core's tick was ≥ `t` may be freed once
    /// `min_tick() ≥ t + 2` (§4.2's two-cycle rule).
    ///
    /// This is the reference frontier: an O(cores) scan. The scaling
    /// path reads [`cached_frontier`](Self::cached_frontier) instead.
    pub fn min_tick(&self) -> u64 {
        self.ticks
            .iter()
            .map(|t| t.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }

    /// The cached reclamation frontier: a single atomic load, always
    /// `≤ min_tick()` (it may lag, never lead — the loom suite checks
    /// this), advanced by sweepers via [`finish_sweep`](Self::sweep).
    pub fn cached_frontier(&self) -> u64 {
        self.frontier.get()
    }

    /// Forces a frontier refresh: one reference scan published into the
    /// cache. Returns the frontier after the publish.
    pub fn advance_frontier(&self) -> u64 {
        self.frontier.advance_to(self.min_tick())
    }

    /// States successfully published (sum of the per-core counters).
    pub fn states_saved(&self) -> u64 {
        self.saved.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Publish attempts that overflowed (sum of the per-core counters).
    pub fn overflows(&self) -> u64 {
        self.overflows
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn inv(mm: u64) -> RtInvalidation {
        RtInvalidation {
            mm,
            start: 0x1000,
            end: 0x2000,
        }
    }

    #[test]
    fn publish_sweep_retire_roundtrip() {
        let r = RtRegistry::new(3, 4);
        r.publish(0, inv(1), 0b110).unwrap();
        assert_eq!(r.queue(0).active_count(), 1);

        let w1 = r.sweep(1);
        assert_eq!(w1, vec![inv(1)]);
        // Still active: core 2 hasn't swept.
        assert_eq!(r.queue(0).active_count(), 1);

        let w2 = r.sweep(2);
        assert_eq!(w2, vec![inv(1)]);
        assert_eq!(r.queue(0).active_count(), 0);

        // A second sweep finds nothing.
        assert!(r.sweep(1).is_empty());
        assert_eq!(r.states_saved(), 1);
    }

    #[test]
    fn sweep_skips_unrelated_cores() {
        let r = RtRegistry::new(4, 4);
        r.publish(0, inv(1), 0b0010).unwrap(); // only core 1
        assert!(r.sweep(2).is_empty());
        assert!(r.sweep(3).is_empty());
        assert_eq!(r.sweep(1), vec![inv(1)]);
    }

    #[test]
    fn overflow_reports_error() {
        let r = RtRegistry::new(2, 2);
        r.publish(0, inv(1), 0b10).unwrap();
        r.publish(0, inv(2), 0b10).unwrap();
        assert_eq!(r.publish(0, inv(3), 0b10), Err(PublishError));
        assert_eq!(r.overflows(), 1);
        // After core 1 sweeps, slots recycle.
        assert_eq!(r.sweep(1).len(), 2);
        assert!(r.publish(0, inv(3), 0b10).is_ok());
    }

    #[test]
    fn broadcast_targets_everyone_else() {
        let r = RtRegistry::new(5, 4);
        r.publish_broadcast(2, inv(9)).unwrap();
        for core in [0, 1, 3, 4] {
            assert_eq!(r.sweep(core).len(), 1, "core {core} must see it");
        }
        assert!(r.sweep(2).is_empty(), "initiator is not targeted");
        assert_eq!(r.queue(2).active_count(), 0);
    }

    #[test]
    fn ticks_and_min_tick() {
        let r = RtRegistry::new(3, 4);
        assert_eq!(r.min_tick(), 0);
        r.sweep(0);
        r.sweep(0);
        r.sweep(1);
        assert_eq!(r.tick_of(0), 2);
        assert_eq!(r.min_tick(), 0, "core 2 never ticked");
        r.sweep(2);
        assert_eq!(r.min_tick(), 1);
    }

    #[test]
    fn cached_frontier_tracks_but_never_leads_min_tick() {
        let r = RtRegistry::new(3, 4);
        assert_eq!(r.cached_frontier(), 0);
        for _ in 0..5 {
            r.sweep(0);
            r.sweep(1);
            assert!(r.cached_frontier() <= r.min_tick());
        }
        // Core 2 never swept: the cache must still be pinned at 0.
        assert_eq!(r.min_tick(), 0);
        assert_eq!(r.cached_frontier(), 0);
        r.sweep(2);
        r.sweep(2);
        // Announce trigger + forced refresh converge the cache.
        assert_eq!(r.advance_frontier(), 2);
        assert_eq!(r.cached_frontier(), 2);
        assert_eq!(r.min_tick(), 2);
    }

    #[test]
    fn sweep_into_appends_without_clearing() {
        let r = RtRegistry::new(2, 4);
        let mut buf = vec![inv(99)];
        r.publish(0, inv(1), 0b10).unwrap();
        r.sweep_into(1, &mut buf);
        assert_eq!(buf, vec![inv(99), inv(1)]);
        r.publish(0, inv(2), 0b10).unwrap();
        buf.clear();
        r.sweep_pending_into(1, &mut buf);
        assert_eq!(buf, vec![inv(2)]);
    }

    #[test]
    fn per_core_counters_aggregate_on_read() {
        let r = RtRegistry::new(4, 1);
        r.publish(0, inv(1), 0b10).unwrap();
        r.publish(1, inv(2), 0b100).unwrap();
        r.publish(2, inv(3), 0b10).unwrap();
        assert_eq!(r.states_saved(), 3);
        assert_eq!(r.publish(0, inv(4), 0b10), Err(PublishError));
        assert_eq!(r.publish(2, inv(5), 0b10), Err(PublishError));
        assert_eq!(r.overflows(), 2);
    }

    #[test]
    fn publish_batch_claims_slots_in_order_with_one_fence() {
        let r = RtRegistry::new(3, 4);
        let batch = [
            (inv(1), [0b110u64, 0, 0, 0]),
            (inv(2), [0b110u64, 0, 0, 0]),
            (inv(3), [0b010u64, 0, 0, 0]),
        ];
        let mut slots = Vec::new();
        r.publish_batch(0, &batch, &mut slots).unwrap();
        assert_eq!(slots, vec![0, 1, 2]);
        assert_eq!(r.queue(0).active_count(), 3);
        assert_eq!(r.states_saved(), 3);
        assert_eq!(r.sweep_pending(1).len(), 3);
        assert_eq!(r.sweep_pending(2).len(), 2);
        assert_eq!(r.queue(0).active_count(), 0);
        // Rows drained: nothing left to visit.
        assert!(r.sweep_pending(1).is_empty());
    }

    #[test]
    fn publish_batch_is_all_or_nothing() {
        let r = RtRegistry::new(2, 3);
        r.publish(0, inv(1), 0b10).unwrap();
        let batch = [
            (inv(2), [0b10u64, 0, 0, 0]),
            (inv(3), [0b10u64, 0, 0, 0]),
            (inv(4), [0b10u64, 0, 0, 0]),
        ];
        let mut slots = Vec::new();
        // 3 entries, 2 free slots: nothing may be published.
        assert_eq!(r.publish_batch(0, &batch, &mut slots), Err(PublishError));
        assert!(slots.is_empty());
        assert_eq!(r.queue(0).active_count(), 1);
        assert_eq!(r.overflows(), 1);
        // The two-entry prefix fits.
        r.publish_batch(0, &batch[..2], &mut slots).unwrap();
        assert_eq!(slots.len(), 2);
        assert_eq!(r.sweep_pending(1).len(), 3);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let r = RtRegistry::new(2, 2);
        let mut slots = vec![99];
        r.publish_batch(0, &[], &mut slots).unwrap();
        assert!(slots.is_empty());
        assert_eq!(r.states_saved(), 0);
        assert_eq!(r.queue(0).active_count(), 0);
    }

    #[test]
    fn pending_sweep_matches_full_sweep() {
        // Publish a scatter of states from several cores, then sweep one
        // target core both ways on identical registries: the pending
        // sweep must deliver exactly the invalidations the full scan
        // does.
        let build = || {
            let r = RtRegistry::new(8, 8);
            r.publish(0, inv(1), 0b0000_0110).unwrap();
            r.publish(3, inv(2), 0b0000_0010).unwrap();
            r.publish(5, inv(3), 0b1111_1110).unwrap();
            r.publish(7, inv(4), 0b0000_1000).unwrap(); // not core 1
            r
        };
        let full = build();
        let fast = build();
        let mut a = full.sweep(1);
        let mut b = fast.sweep_pending(1);
        a.sort_unstable_by_key(|i| i.mm);
        b.sort_unstable_by_key(|i| i.mm);
        assert_eq!(a, b);
        assert_eq!(b.len(), 3);
        // A second pending sweep is an empty row, not a rescan.
        assert!(fast.sweep_pending(1).is_empty());
    }

    #[test]
    fn stale_pending_bits_are_harmless() {
        let r = RtRegistry::new(4, 4);
        r.publish(0, inv(1), 0b0110).unwrap();
        // Core 2 sweeps via the full scan, which clears its mask bit but
        // leaves its pending bit stale-set.
        assert_eq!(r.sweep(2).len(), 1);
        // The stale bit costs one empty visit and is dropped.
        assert!(r.sweep_pending(2).is_empty());
        // Core 1's bit is still live.
        assert_eq!(r.sweep_pending(1).len(), 1);
    }

    #[test]
    fn concurrent_batch_publish_and_pending_sweep_loses_nothing() {
        // One publisher batching 4 states at a time, three pending-sweep
        // consumers. Every state targets all three; each must deliver
        // every mm exactly once.
        let r = Arc::new(RtRegistry::new(4, 1024));
        let total = 500u64;
        let publisher = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut slots = Vec::new();
                let mut published = 0;
                while published < total {
                    let k = (total - published).min(4);
                    let batch: Vec<_> = (published..published + k)
                        .map(|mm| (inv(mm), [0b1110u64, 0, 0, 0]))
                        .collect();
                    if r.publish_batch(0, &batch, &mut slots).is_ok() {
                        published += k;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let sweepers: Vec<_> = (1..4)
            .map(|core| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while seen.len() < total as usize {
                        for w in r.sweep_pending(core) {
                            seen.push(w.mm);
                        }
                        std::thread::yield_now();
                    }
                    seen.sort_unstable();
                    seen
                })
            })
            .collect();
        publisher.join().unwrap();
        for s in sweepers {
            let seen = s.join().unwrap();
            assert_eq!(seen, (0..total).collect::<Vec<_>>());
        }
        assert_eq!(r.queue(0).active_count(), 0);
        assert_eq!(r.states_saved(), total);
    }

    #[test]
    fn concurrent_publish_and_sweep_loses_nothing() {
        // One publisher core, three sweeper cores. Every published state
        // must be seen exactly once by every targeted sweeper.
        let r = Arc::new(RtRegistry::new(4, 1024));
        let total = 500u64;
        let publisher = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut published = 0;
                while published < total {
                    if r.publish(0, inv(published), 0b1110).is_ok() {
                        published += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let sweepers: Vec<_> = (1..4)
            .map(|core| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while seen.len() < total as usize {
                        for w in r.sweep(core) {
                            seen.push(w.mm);
                        }
                        std::thread::yield_now();
                    }
                    seen.sort_unstable();
                    seen
                })
            })
            .collect();
        publisher.join().unwrap();
        for s in sweepers {
            let seen = s.join().unwrap();
            assert_eq!(seen.len(), total as usize);
            // No duplicates, nothing lost.
            assert_eq!(seen, (0..total).collect::<Vec<_>>());
        }
        assert_eq!(r.queue(0).active_count(), 0);
        assert_eq!(r.states_saved(), total);
    }
}
