//! Lock-free Latr state queues and the all-cores registry.
//!
//! Memory layout follows §4.1: each core owns a cyclic array of states
//! "allocated from a contiguous memory region" so sweeps stream through
//! them with the prefetcher. Publication uses the paper's ordering rule:
//! "an entry is activated after setting all the fields using an atomic
//! instruction coupled with a memory barrier" — here, a release store of
//! the `active` flag after the plain field writes, paired with acquire
//! loads in the sweep.

use crate::rt::frontier::{FrontierWatchdog, ReclaimFrontier, REFRESH_TICKS};
use crate::rt::mask::{mask_first_n_except, AtomicCpuMask};
use crate::rt::pad::CachePadded;
use crate::rt::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::rt::sync::Mutex;

/// Sentinel slot index returned by a publish whose entire target mask was
/// excluded cores: the invalidation is moot (a dead core has no cache to
/// keep coherent, and an excluded core must flush before rejoining), so
/// no queue slot was consumed.
pub const NO_SLOT: usize = usize::MAX;

/// The payload of one invalidation: which address space and which virtual
/// byte range must be flushed from the sweeper's local cache/TLB analogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtInvalidation {
    /// Address-space identifier (the `mm` pointer in the kernel).
    pub mm: u64,
    /// First byte of the range.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

/// Publishing failed because every slot is active — the caller must fall
/// back to its synchronous mechanism (IPIs in the kernel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishError;

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latr state queue full; fall back to synchronous shootdown"
        )
    }
}

impl std::error::Error for PublishError {}

/// One slot: the Latr state of §4.1 with an atomic activation flag.
#[derive(Debug)]
struct Slot {
    start: AtomicU64,
    end: AtomicU64,
    mm: AtomicU64,
    cpus: AtomicCpuMask,
    active: AtomicBool,
}

impl Slot {
    fn new() -> Self {
        Slot {
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            mm: AtomicU64::new(0),
            cpus: AtomicCpuMask::new(),
            active: AtomicBool::new(false),
        }
    }
}

/// A single core's cyclic, lock-free queue of Latr states.
///
/// Single-publisher (the owning core), multi-clearer (every sweeping
/// core). An `active` counter lets sweeps skip idle queues with a single
/// load — the contiguous-and-cheap sweep §4.1 relies on.
#[derive(Debug)]
pub struct RtQueue {
    slots: Box<[Slot]>,
    // Head and active counter each own a cache line: the publisher's
    // head bump must not invalidate the line every sweeper polls for the
    // idle-queue fast path (and vice versa).
    head: CachePadded<AtomicUsize>,
    active: CachePadded<AtomicUsize>,
}

impl RtQueue {
    /// Creates a queue of `capacity` slots (64 in the paper).
    pub fn new(capacity: usize) -> Self {
        RtQueue {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: CachePadded::new(AtomicUsize::new(0)),
            active: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently active states (racy snapshot).
    pub fn active_count(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Publishes an invalidation for the CPUs in `cpu_words`. Only the
    /// owning core may call this (single producer).
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] when all slots are active; the caller
    /// falls back to its synchronous path.
    pub fn publish(&self, inv: RtInvalidation, cpu_words: [u64; 4]) -> Result<usize, PublishError> {
        let n = self.slots.len();
        let head = self.head.load(Ordering::Relaxed);
        for probe in 0..n {
            let idx = (head + probe) % n;
            let slot = &self.slots[idx];
            if slot.active.load(Ordering::Acquire) {
                continue;
            }
            // Fields first (plain stores)...
            slot.start.store(inv.start, Ordering::Relaxed);
            slot.end.store(inv.end, Ordering::Relaxed);
            slot.mm.store(inv.mm, Ordering::Relaxed);
            slot.cpus.store_words(cpu_words, Ordering::Relaxed);
            // ...then the activation with release ordering (§4.1's barrier).
            self.active.fetch_add(1, Ordering::Release);
            slot.active.store(true, Ordering::Release);
            self.head.store((idx + 1) % n, Ordering::Relaxed);
            return Ok(idx);
        }
        Err(PublishError)
    }

    /// Publishes a batch of same-tick invalidations with **one** memory
    /// barrier instead of one release-store per entry: all fields of all
    /// claimed slots are written plain, a single release fence orders
    /// them, then the activation flags flip. All-or-nothing: either every
    /// entry gets a slot or none does and the caller falls back to its
    /// synchronous path for the whole batch. Only the owning core may
    /// call this (single producer), and `out` receives the claimed slot
    /// indices in batch order.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] when fewer than `batch.len()` slots are
    /// free.
    pub fn publish_batch(
        &self,
        batch: &[(RtInvalidation, [u64; 4])],
        out: &mut Vec<usize>,
    ) -> Result<(), PublishError> {
        out.clear();
        if batch.is_empty() {
            return Ok(());
        }
        let n = self.slots.len();
        if batch.len() > n {
            return Err(PublishError);
        }
        // Claim free slots cyclically from the head. Single producer: a
        // slot observed inactive stays claimable (only we activate), so
        // probing and writing need no CAS.
        let head = self.head.load(Ordering::Relaxed);
        for probe in 0..n {
            let idx = (head + probe) % n;
            if !self.slots[idx].active.load(Ordering::Acquire) {
                out.push(idx);
                if out.len() == batch.len() {
                    break;
                }
            }
        }
        if out.len() < batch.len() {
            out.clear();
            return Err(PublishError);
        }
        for (&idx, (inv, words)) in out.iter().zip(batch) {
            let slot = &self.slots[idx];
            slot.start.store(inv.start, Ordering::Relaxed);
            slot.end.store(inv.end, Ordering::Relaxed);
            slot.mm.store(inv.mm, Ordering::Relaxed);
            slot.cpus.store_words(*words, Ordering::Relaxed);
        }
        self.active.fetch_add(batch.len(), Ordering::Release);
        // The batch's one barrier: a sweeper's acquire load of any
        // activation flag below synchronizes with this fence, making all
        // the plain field writes above visible.
        fence(Ordering::Release);
        for &idx in out.iter() {
            self.slots[idx].active.store(true, Ordering::Relaxed);
        }
        self.head
            .store((out[out.len() - 1] + 1) % n, Ordering::Relaxed);
        Ok(())
    }

    /// Sweeps this queue on behalf of `cpu`: collects every active state
    /// naming it, clears the bit, and retires slots whose masks emptied.
    /// Idle queues cost one atomic load.
    pub fn sweep_for(&self, cpu: usize, out: &mut Vec<RtInvalidation>) {
        if self.active.load(Ordering::Acquire) == 0 {
            return;
        }
        for slot in self.slots.iter() {
            if !slot.active.load(Ordering::Acquire) {
                continue;
            }
            if !slot.cpus.test(cpu, Ordering::Acquire) {
                continue;
            }
            // Read the payload before clearing our bit: once the mask
            // empties the slot may be recycled by the publisher.
            let inv = RtInvalidation {
                mm: slot.mm.load(Ordering::Relaxed),
                start: slot.start.load(Ordering::Relaxed),
                end: slot.end.load(Ordering::Relaxed),
            };
            let (was_set, now_empty) = slot.cpus.clear(cpu);
            if was_set {
                out.push(inv);
                if now_empty {
                    // Last core out retires the state; the CAS makes the
                    // cross-word emptiness race benign — exactly one
                    // retirer decrements the counter.
                    if slot
                        .active
                        .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.active.fetch_sub(1, Ordering::Release);
                    }
                }
            }
        }
    }

    /// Clears `cpu`'s bit from every active state *without* delivering the
    /// payload, retiring slots whose masks empty — the "leak, never
    /// corrupt" reap done on behalf of an excluded core whose local cache
    /// either no longer exists (dead thread) or will be flushed wholesale
    /// before it rejoins. Returns the number of states cleared.
    fn reap_for(&self, cpu: usize) -> u64 {
        if self.active.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let mut reaped = 0;
        for slot in self.slots.iter() {
            if !slot.active.load(Ordering::Acquire) {
                continue;
            }
            if !slot.cpus.test(cpu, Ordering::Acquire) {
                continue;
            }
            let (was_set, now_empty) = slot.cpus.clear(cpu);
            if was_set {
                reaped += 1;
                if now_empty
                    && slot
                        .active
                        .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    self.active.fetch_sub(1, Ordering::Release);
                }
            }
        }
        reaped
    }
}

/// Cold robustness counters. They are bumped only on exclusion events
/// (rare by construction), so they share one padded line instead of
/// taking five.
#[derive(Debug, Default)]
struct RobustCounters {
    /// Cores excluded by the frontier watchdog (stall detection).
    stall_exclusions: AtomicU64,
    /// Cores excluded because their sweep panicked (see [`SweepGuard`]).
    panic_poisons: AtomicU64,
    /// Excluded cores that flushed and rejoined the frontier.
    rejoins: AtomicU64,
    /// States dropped while reaping excluded cores' bits from the queues.
    reaped_states: AtomicU64,
    /// Exclusion *epoch*: bumped on every exclusion AND every rejoin, so
    /// an unchanged value brackets a window with a stable live set (the
    /// soak canary compares epochs to know its ground-truth recheck is
    /// race-free).
    exclusion_events: AtomicU64,
}

/// Unified snapshot of every rt runtime counter, taken in one pass with
/// saturating aggregation. This is the one API benches, tests, and the
/// adaptive tuner read instead of poking individual counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RtStats {
    /// Number of cores in the registry.
    pub cores: usize,
    /// States successfully published (queue path taken, IPI avoided).
    pub states_saved: u64,
    /// Publish attempts that overflowed to the synchronous path.
    pub overflows: u64,
    /// Minimum tick over **all** cores (excluded ones included — this is
    /// the PR-5 reference frontier and stops advancing once a core dies).
    pub min_tick: u64,
    /// Minimum tick over live (non-excluded) cores; equals `min_tick`
    /// when nothing is excluded.
    pub min_live_tick: u64,
    /// Maximum tick over all cores.
    pub max_tick: u64,
    /// The cached reclamation frontier.
    pub cached_frontier: u64,
    /// How far the fastest sweeper leads the cached frontier
    /// (`max_tick - cached_frontier`, saturating) — the live reclaim-lag
    /// signal the adaptive tuner sizes the grace wheel from.
    pub reclaim_lag_ticks: u64,
    /// Cores currently excluded from the frontier.
    pub excluded_cores: usize,
    /// Watchdog-driven exclusions to date.
    pub stall_exclusions: u64,
    /// Panic-driven exclusions to date.
    pub panic_poisons: u64,
    /// Flush-and-rejoin events to date.
    pub rejoins: u64,
    /// States leaked (reaped undelivered) on behalf of excluded cores.
    pub reaped_states: u64,
    /// Exclusion epoch (see [`RtRegistry::exclusion_events`]).
    pub exclusion_events: u64,
    /// Items parked awaiting their grace period — the real-thread
    /// analogue of the simulator's reclamation-debt ledger. The registry
    /// has no reclaimer handle, so [`RtRegistry::stats`] reports 0 here;
    /// harnesses fill it in with
    /// [`with_reclaim_debt`](RtStats::with_reclaim_debt) from
    /// [`Reclaimer::debt`](crate::rt::Reclaimer::debt).
    pub reclaim_debt: u64,
}

impl RtStats {
    /// Returns the snapshot with the reclamation debt filled in (see the
    /// [`reclaim_debt`](RtStats::reclaim_debt) field).
    pub fn with_reclaim_debt(mut self, debt: u64) -> Self {
        self.reclaim_debt = debt;
        self
    }
}

/// RAII panic fence around a sweep/reclaim critical section: if the
/// guarded scope unwinds (or the thread dies mid-sweep and Rust unwinds
/// it), `Drop` poisons only this core — it is excluded from the frontier
/// so every *other* core's reclamation keeps advancing, and its
/// undelivered states are reaped (leaked, never delivered corrupt).
/// Call [`complete`](SweepGuard::complete) on the success path.
#[derive(Debug)]
pub struct SweepGuard<'a> {
    registry: &'a RtRegistry,
    core: usize,
    armed: bool,
}

impl SweepGuard<'_> {
    /// The guarded core.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Disarms the guard: the sweep completed normally.
    pub fn complete(mut self) {
        self.armed = false;
    }
}

impl Drop for SweepGuard<'_> {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            self.registry.poison_core(self.core);
        }
    }
}

/// All cores' queues plus per-core tick counters: the complete §4.1
/// structure ("64 Latr states per core, allocated from a contiguous
/// memory region").
#[derive(Debug)]
pub struct RtRegistry {
    queues: Vec<RtQueue>,
    /// Pending-sweep bitmap, one row per target core: bit *q* of row *c*
    /// means "queue *q* may hold a state naming core *c*". Publishers set
    /// bits *after* activating their slots; [`sweep_pending`] drains its
    /// row atomically and visits only the flagged queues. Bits can be
    /// stale-set (a visit that finds nothing) but never stale-clear.
    ///
    /// [`sweep_pending`]: RtRegistry::sweep_pending
    ///
    /// Each row is cache-line-padded: a publisher flagging core A's row
    /// must not ping-pong the line core B drains every tick.
    pending: Box<[CachePadded<AtomicCpuMask>]>,
    /// Per-core tick counters, one cache line each — the hottest state in
    /// the registry (bumped on every sweep, scanned by the frontier).
    ticks: Box<[CachePadded<AtomicU64>]>,
    /// Cached lower bound of [`min_tick`](Self::min_tick), advanced by
    /// sweepers (see [`ReclaimFrontier`]).
    frontier: ReclaimFrontier,
    /// Per-core publish counters (indexed by the publishing core, summed
    /// on read) so the single shared `fetch_add` line disappears from the
    /// publish path.
    saved: Box<[CachePadded<AtomicU64>]>,
    /// Per-core overflow counters, same layout as `saved`.
    overflows: Box<[CachePadded<AtomicU64>]>,
    /// Cores excluded from the frontier (watchdog-stalled or poisoned).
    /// A set bit means the core's tick no longer gates reclamation and
    /// its queue bits are reaped; the owner must flush its local cache
    /// and [`rejoin`](Self::rejoin) before sweeping normally again.
    excluded: CachePadded<AtomicCpuMask>,
    /// Fast-path mirror of `excluded.count()`: publishers check one
    /// relaxed load of this (a line that is never written in healthy
    /// runs) before paying the mask filter.
    excluded_count: CachePadded<AtomicUsize>,
    /// Real-time stall detector, present only when constructed via
    /// [`with_watchdog`](Self::with_watchdog). `None` keeps the fault-free
    /// sweep path bit-identical to the un-hardened registry.
    watchdog: Option<FrontierWatchdog>,
    /// The hotplug-style transition lock: serializes exclusion-mask
    /// transitions (exclude/rejoin) against *live-set* frontier scans. A
    /// scan whose mask snapshot predates a rejoin could otherwise pass
    /// the rejoined core's freshly caught-up tick and advance the cached
    /// frontier over a live core — the one way "leak, never corrupt"
    /// could turn into corruption. Scans take it with `try_lock` (skip
    /// on contention, the forced refresh retries), so the healthy sweep
    /// path never blocks; transitions are rare and may.
    transition: Mutex<()>,
    robust: CachePadded<RobustCounters>,
}

impl RtRegistry {
    /// Creates the registry for `cores` cores with `states_per_core` slots
    /// each. The frontier watchdog is disabled; panic poisoning via
    /// [`sweep_guard`](Self::sweep_guard) still works.
    pub fn new(cores: usize, states_per_core: usize) -> Self {
        Self::build(cores, states_per_core, None)
    }

    /// [`new`](Self::new) plus a real-time frontier watchdog: a core that
    /// goes `watchdog_timeout_ns` without completing a sweep is excluded
    /// from the frontier by the next [`check_watchdog`](Self::check_watchdog)
    /// (also run in-band from the periodic forced refresh), so a dead or
    /// wedged thread pins reclamation for at most the timeout plus one
    /// detection interval instead of forever.
    pub fn with_watchdog(cores: usize, states_per_core: usize, watchdog_timeout_ns: u64) -> Self {
        Self::build(
            cores,
            states_per_core,
            Some(FrontierWatchdog::new(cores, watchdog_timeout_ns)),
        )
    }

    fn build(cores: usize, states_per_core: usize, watchdog: Option<FrontierWatchdog>) -> Self {
        RtRegistry {
            queues: (0..cores).map(|_| RtQueue::new(states_per_core)).collect(),
            pending: (0..cores)
                .map(|_| CachePadded::new(AtomicCpuMask::new()))
                .collect(),
            ticks: (0..cores)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            frontier: ReclaimFrontier::new(),
            saved: (0..cores)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            overflows: (0..cores)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            excluded: CachePadded::new(AtomicCpuMask::new()),
            excluded_count: CachePadded::new(AtomicUsize::new(0)),
            watchdog,
            transition: Mutex::new(()),
            robust: CachePadded::new(RobustCounters::default()),
        }
    }

    /// Flags `core`'s queue in the pending row of every CPU named in
    /// `target_words`. Must run *after* the slots were activated: the
    /// release `fetch_or` pairs with the sweep's draining swap, so a
    /// sweeper that takes a bit is guaranteed to see the activation.
    fn mark_pending(&self, core: usize, target_words: [u64; 4]) {
        for (w, word) in target_words.into_iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let cpu = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if cpu < self.pending.len() {
                    self.pending[cpu].set_bit(core);
                }
            }
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.queues.len()
    }

    /// One core's queue.
    pub fn queue(&self, core: usize) -> &RtQueue {
        &self.queues[core]
    }

    /// Publishes an invalidation from `core` targeting the CPUs whose bits
    /// are set in `target_bits` (bit *i* of word *w* = CPU `w*64+i`).
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] on queue overflow.
    pub fn publish(
        &self,
        core: usize,
        inv: RtInvalidation,
        target_bits: u64,
    ) -> Result<usize, PublishError> {
        self.publish_wide(core, inv, [target_bits, 0, 0, 0])
    }

    /// [`publish`](Self::publish) with a full 256-bit target mask.
    ///
    /// Excluded cores are filtered out of the target mask (their caches
    /// are gone or will be flushed before rejoin, so delivering to them
    /// is moot); a mask that empties entirely consumes no slot and
    /// returns [`NO_SLOT`]. On overflow while cores are excluded the
    /// queue is reaped of dead bits and the publish retried once — a dead
    /// core must not be able to pin every slot of a live publisher.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] on queue overflow.
    pub fn publish_wide(
        &self,
        core: usize,
        inv: RtInvalidation,
        target_words: [u64; 4],
    ) -> Result<usize, PublishError> {
        let mut words = target_words;
        let degraded = self.excluded_count.load(Ordering::Relaxed) > 0;
        if degraded {
            let ex = self.excluded.load_words(Ordering::Acquire);
            for (w, e) in words.iter_mut().zip(ex) {
                *w &= !e;
            }
            if words == [0u64; 4] {
                self.saved[core].fetch_add(1, Ordering::Relaxed);
                return Ok(NO_SLOT);
            }
        }
        match self.queues[core].publish(inv, words) {
            Ok(idx) => {
                self.mark_pending(core, words);
                self.saved[core].fetch_add(1, Ordering::Relaxed);
                Ok(idx)
            }
            Err(_) if degraded && self.reap_queue_of_excluded(core) > 0 => {
                // Dead-core bits were pinning slots; retry once post-reap.
                match self.queues[core].publish(inv, words) {
                    Ok(idx) => {
                        self.mark_pending(core, words);
                        self.saved[core].fetch_add(1, Ordering::Relaxed);
                        Ok(idx)
                    }
                    Err(e) => {
                        self.overflows[core].fetch_add(1, Ordering::Relaxed);
                        Err(e)
                    }
                }
            }
            Err(e) => {
                self.overflows[core].fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Publishes a batch of same-tick invalidations from `core` with a
    /// single barrier (see [`RtQueue::publish_batch`]), then flags the
    /// pending rows of every targeted CPU. All-or-nothing; `out` receives
    /// the claimed slot indices.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] when the batch doesn't fit; the whole
    /// batch falls back to the synchronous path and counts one overflow.
    ///
    /// While cores are excluded, each entry's mask is filtered like
    /// [`publish_wide`](Self::publish_wide); entries whose masks empty
    /// report [`NO_SLOT`] in `out` (batch order is preserved).
    #[latr::hot_path]
    pub fn publish_batch(
        &self,
        core: usize,
        batch: &[(RtInvalidation, [u64; 4])],
        out: &mut Vec<usize>,
    ) -> Result<(), PublishError> {
        if self.excluded_count.load(Ordering::Relaxed) > 0 {
            return self.publish_batch_degraded(core, batch, out);
        }
        match self.queues[core].publish_batch(batch, out) {
            Ok(()) => {
                for &(_, words) in batch {
                    self.mark_pending(core, words);
                }
                self.saved[core].fetch_add(batch.len() as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.overflows[core].fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// [`publish_batch`](Self::publish_batch), exclusion-filtered slow
    /// path. Only taken while at least one core is excluded, so the
    /// allocation is off the healthy hot path.
    // alloc_ok: only reachable while at least one core is excluded, so
    // the filtered-batch buffers are off the healthy hot path by
    // construction (the `excluded_count` gate above this call).
    #[latr::alloc_ok]
    fn publish_batch_degraded(
        &self,
        core: usize,
        batch: &[(RtInvalidation, [u64; 4])],
        out: &mut Vec<usize>,
    ) -> Result<(), PublishError> {
        let ex = self.excluded.load_words(Ordering::Acquire);
        let mut filtered: Vec<(RtInvalidation, [u64; 4])> = Vec::with_capacity(batch.len());
        let mut live_mask = Vec::with_capacity(batch.len());
        for &(inv, words) in batch {
            let mut w = words;
            for (wi, e) in w.iter_mut().zip(ex) {
                *wi &= !e;
            }
            let live = w != [0u64; 4];
            live_mask.push(live);
            if live {
                filtered.push((inv, w));
            }
        }
        let mut claimed = Vec::with_capacity(filtered.len());
        let published = match self.queues[core].publish_batch(&filtered, &mut claimed) {
            Ok(()) => true,
            // Dead-core bits may be pinning slots; reap and retry once.
            Err(_) if self.reap_queue_of_excluded(core) > 0 => self.queues[core]
                .publish_batch(&filtered, &mut claimed)
                .is_ok(),
            Err(_) => false,
        };
        if !published {
            out.clear();
            self.overflows[core].fetch_add(1, Ordering::Relaxed);
            return Err(PublishError);
        }
        for &(_, words) in &filtered {
            self.mark_pending(core, words);
        }
        self.saved[core].fetch_add(batch.len() as u64, Ordering::Relaxed);
        out.clear();
        let mut next = claimed.into_iter();
        for live in live_mask {
            out.push(if live {
                next.next().expect("one claimed slot per live entry")
            } else {
                NO_SLOT
            });
        }
        Ok(())
    }

    /// Publishes to every core except the initiator.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] on queue overflow.
    pub fn publish_broadcast(
        &self,
        core: usize,
        inv: RtInvalidation,
    ) -> Result<usize, PublishError> {
        self.publish_wide(core, inv, mask_first_n_except(self.cores(), core))
    }

    /// The sweep (§4.1), reference form: scans *every* core's queue for
    /// states naming `core`, clears its bits, bumps its tick counter, and
    /// returns the invalidations the caller must apply locally.
    pub fn sweep(&self, core: usize) -> Vec<RtInvalidation> {
        let mut out = Vec::new();
        self.sweep_into(core, &mut out);
        out
    }

    /// Allocation-free [`sweep`](Self::sweep): appends the invalidations
    /// to `out` (not cleared first) so a tick loop can reuse one buffer
    /// across its whole lifetime.
    #[latr::hot_path]
    pub fn sweep_into(&self, core: usize, out: &mut Vec<RtInvalidation>) {
        for q in &self.queues {
            q.sweep_for(core, out);
        }
        self.finish_sweep(core, true);
    }

    /// [`sweep_into`](Self::sweep_into) without the frontier announce:
    /// the tick still bumps (and the watchdog still sees the sweep — the
    /// thread is alive), but the announce/forced-refresh trigger is
    /// skipped. This models a delayed frontier announce: correctness is
    /// untouched (the invalidations are applied; the cached frontier only
    /// lags further), and other cores' forced refreshes eventually pick
    /// the progress up.
    pub fn sweep_into_unannounced(&self, core: usize, out: &mut Vec<RtInvalidation>) {
        for q in &self.queues {
            q.sweep_for(core, out);
        }
        self.finish_sweep(core, false);
    }

    /// The fast sweep: drains `core`'s pending row and visits only the
    /// flagged queues. Equivalent to [`sweep`](Self::sweep) — a publisher
    /// flags the row only after activating its slots, so every state
    /// naming `core` is covered by a bit; a stale-set bit just costs one
    /// empty queue scan. Bits set concurrently with the drain survive
    /// into the next sweep.
    pub fn sweep_pending(&self, core: usize) -> Vec<RtInvalidation> {
        let mut out = Vec::new();
        self.sweep_pending_into(core, &mut out);
        out
    }

    /// Allocation-free [`sweep_pending`](Self::sweep_pending): appends to
    /// `out` (not cleared first) for buffer reuse in tick loops.
    #[latr::hot_path]
    pub fn sweep_pending_into(&self, core: usize, out: &mut Vec<RtInvalidation>) {
        self.sweep_pending_inner(core, out, true);
    }

    /// [`sweep_pending_into`](Self::sweep_pending_into) without the
    /// frontier announce (see
    /// [`sweep_into_unannounced`](Self::sweep_into_unannounced)).
    pub fn sweep_pending_into_unannounced(&self, core: usize, out: &mut Vec<RtInvalidation>) {
        self.sweep_pending_inner(core, out, false);
    }

    fn sweep_pending_inner(&self, core: usize, out: &mut Vec<RtInvalidation>, announce: bool) {
        let row = self.pending[core].take_words();
        for (w, word) in row.into_iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let qi = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if qi < self.queues.len() {
                    self.queues[qi].sweep_for(core, out);
                }
            }
        }
        self.finish_sweep(core, announce);
    }

    /// Bumps `core`'s tick and announces it to the cached frontier:
    /// only a core that may have been the frontier laggard (its pre-bump
    /// tick equalled the cache) re-scans, plus a periodic forced refresh
    /// as the liveness backstop (see [`crate::rt::frontier`]). Every
    /// other sweep costs one padded-line `fetch_add` and one load.
    ///
    /// With the watchdog enabled the sweep is also timestamped, and the
    /// periodic forced refresh doubles as the in-band stall check.
    fn finish_sweep(&self, core: usize, announce: bool) {
        if let Some(w) = &self.watchdog {
            w.record_sweep(core);
        }
        let old = self.ticks[core].fetch_add(1, Ordering::Release);
        let forced = (old + 1).is_multiple_of(REFRESH_TICKS);
        if announce && (old == self.frontier.get() || forced) {
            self.advance_frontier();
        }
        if forced && self.watchdog.is_some() {
            self.check_watchdog();
        }
    }

    /// A core's tick count.
    pub fn tick_of(&self, core: usize) -> u64 {
        self.ticks[core].load(Ordering::Acquire)
    }

    /// The minimum tick across all cores — the reclamation frontier: an
    /// object parked when every core's tick was ≥ `t` may be freed once
    /// `min_tick() ≥ t + 2` (§4.2's two-cycle rule).
    ///
    /// This is the reference frontier: an O(cores) scan. The scaling
    /// path reads [`cached_frontier`](Self::cached_frontier) instead.
    pub fn min_tick(&self) -> u64 {
        self.ticks
            .iter()
            .map(|t| t.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }

    /// The cached reclamation frontier: a single atomic load, always
    /// `≤ min_tick()` (it may lag, never lead — the loom suite checks
    /// this), advanced by sweepers via [`finish_sweep`](Self::sweep).
    pub fn cached_frontier(&self) -> u64 {
        self.frontier.get()
    }

    /// The minimum tick across *live* (non-excluded) cores — the frontier
    /// the hardened runtime gates reclamation on. With nothing excluded
    /// this is exactly [`min_tick`](Self::min_tick) (one relaxed load
    /// decides, so the healthy path is unchanged). With exclusions, a
    /// core observed as excluded contributes the *cached frontier* as its
    /// stand-in tick instead of being skipped: this read is lock-free and
    /// can race a concurrent [`rejoin`](Self::rejoin), and the cached
    /// frontier is the one value guaranteed not to exceed the rejoined
    /// core's caught-up tick (`cached ≤ min-live` is the transition-lock
    /// invariant). The result is a sound lower bound for any caller; the
    /// advancement path uses the exact live scan under the transition
    /// lock instead ([`advance_frontier`](Self::advance_frontier)), so
    /// dead cores still stop gating reclamation.
    #[latr::hot_path]
    pub fn min_live_tick(&self) -> u64 {
        if self.excluded_count.load(Ordering::Relaxed) == 0 {
            return self.min_tick();
        }
        let floor = self.frontier.get();
        let mut min = u64::MAX;
        for (core, t) in self.ticks.iter().enumerate() {
            if self.excluded.test(core, Ordering::Acquire) {
                min = min.min(floor);
            } else {
                min = min.min(t.load(Ordering::Acquire));
            }
        }
        min
    }

    /// The exact minimum over live cores. Only sound while `transition`
    /// is held (or when no core is excluded): a concurrent rejoin would
    /// let this pass the rejoining core's tick.
    fn min_live_tick_locked(&self) -> u64 {
        let mut min = u64::MAX;
        let mut any_live = false;
        for (core, t) in self.ticks.iter().enumerate() {
            if self.excluded.test(core, Ordering::Acquire) {
                continue;
            }
            min = min.min(t.load(Ordering::Acquire));
            any_live = true;
        }
        if any_live {
            min
        } else {
            self.frontier.get()
        }
    }

    /// Forces a frontier refresh: one reference scan published into the
    /// cache. Returns the frontier after the publish.
    ///
    /// With no exclusions this is the full-set scan — unconditionally
    /// safe to publish, since the minimum over *all* ticks lower-bounds
    /// the minimum over any live subset even mid-transition. With
    /// exclusions the scan must skip dead cores to make progress, which
    /// is only sound against a stable mask: it runs under the transition
    /// lock, and skips the refresh entirely if the lock is contended (an
    /// exclude/rejoin is in flight; the next announce or forced refresh
    /// retries).
    pub fn advance_frontier(&self) -> u64 {
        if self.excluded_count.load(Ordering::Acquire) == 0 {
            return self.frontier.advance_to(self.min_tick());
        }
        match self.transition.try_lock() {
            Some(_guard) => self.frontier.advance_to(self.min_live_tick_locked()),
            None => self.frontier.get(),
        }
    }

    /// States successfully published (sum of the per-core counters).
    pub fn states_saved(&self) -> u64 {
        self.saved
            .iter()
            .fold(0u64, |a, c| a.saturating_add(c.load(Ordering::Relaxed)))
    }

    /// Publish attempts that overflowed (sum of the per-core counters).
    pub fn overflows(&self) -> u64 {
        self.overflows
            .iter()
            .fold(0u64, |a, c| a.saturating_add(c.load(Ordering::Relaxed)))
    }

    /// Whether this registry was built with a frontier watchdog.
    pub fn watchdog_enabled(&self) -> bool {
        self.watchdog.is_some()
    }

    /// The frontier watchdog, if enabled (benches read timestamps and,
    /// under loom, drive the virtual clock through this).
    pub fn watchdog(&self) -> Option<&FrontierWatchdog> {
        self.watchdog.as_ref()
    }

    /// Whether any core is currently excluded (one relaxed load).
    pub fn has_exclusions(&self) -> bool {
        self.excluded_count.load(Ordering::Relaxed) > 0
    }

    /// Whether `core` is currently excluded from the frontier.
    pub fn is_excluded(&self, core: usize) -> bool {
        core < self.queues.len() && self.excluded.test(core, Ordering::Acquire)
    }

    /// The exclusion epoch: bumped on every exclusion and every rejoin.
    /// A canary that records it at defer and re-reads it at collect knows
    /// the live set was stable in between — only then is the strict
    /// ground-truth recheck (`min_live_tick() ≥ due`) race-free.
    pub fn exclusion_events(&self) -> u64 {
        self.robust.exclusion_events.load(Ordering::Acquire)
    }

    /// Scans every core against the watchdog timeout and excludes the
    /// stalled ones. Returns how many cores were newly excluded. No-op
    /// (returns 0) when the registry has no watchdog.
    ///
    /// Run from a monitor thread and in-band from the periodic forced
    /// refresh, so detection latency is bounded by the refresh cadence of
    /// the *live* cores, not by the dead one.
    pub fn check_watchdog(&self) -> usize {
        let Some(w) = &self.watchdog else {
            return 0;
        };
        let now = w.now_ns();
        let mut newly = 0;
        for core in 0..self.queues.len() {
            if w.timed_out(core, now)
                && !self.excluded.test(core, Ordering::Acquire)
                && self.exclude_core(core)
            {
                newly += 1;
            }
        }
        newly
    }

    /// Excludes `core` from the frontier as watchdog-stalled: its tick no
    /// longer gates reclamation, its undelivered queue bits are reaped
    /// ("leak, never corrupt"), and the frontier is force-refreshed so
    /// reclamation advances over it. Returns `false` if the core was
    /// already excluded (or out of range) — exactly one caller wins.
    pub fn exclude_core(&self, core: usize) -> bool {
        self.exclude_inner(core, false)
    }

    /// [`exclude_core`](Self::exclude_core) with the panic-poison reason,
    /// used by [`SweepGuard`] when a sweep unwinds.
    pub fn poison_core(&self, core: usize) -> bool {
        self.exclude_inner(core, true)
    }

    fn exclude_inner(&self, core: usize, poisoned: bool) -> bool {
        if core >= self.queues.len() {
            return false;
        }
        // Mask transition: serialized against live-set frontier scans
        // (see the `transition` field). Taken before the bit flips so a
        // scan never observes a half-applied transition.
        let _guard = self.transition.lock();
        if self.excluded.set_returning(core) {
            return false;
        }
        self.excluded_count.fetch_add(1, Ordering::AcqRel);
        self.robust.exclusion_events.fetch_add(1, Ordering::AcqRel);
        let reason = if poisoned {
            &self.robust.panic_poisons
        } else {
            &self.robust.stall_exclusions
        };
        reason.fetch_add(1, Ordering::Relaxed);
        // Leak, never corrupt: drop the dead core's undelivered
        // invalidations so its bits stop pinning live publishers' slots.
        // Safe because the core either never reads its cache again (dead)
        // or must flush it wholesale before rejoining.
        let mut reaped = 0;
        for q in &self.queues {
            reaped += q.reap_for(core);
        }
        self.robust
            .reaped_states
            .fetch_add(reaped, Ordering::Relaxed);
        // Let the frontier advance over the excluded core immediately —
        // inline, since we already hold the transition lock.
        self.frontier.advance_to(self.min_live_tick_locked());
        true
    }

    /// Reaps every *excluded* core's bits from `core`'s own queue,
    /// returning the number of states cleared. Called on publish overflow
    /// while exclusions are active, so a dead core can't permanently pin
    /// a live publisher's slots between exclusion-time reaps.
    fn reap_queue_of_excluded(&self, core: usize) -> u64 {
        let ex = self.excluded.load_words(Ordering::Acquire);
        let mut reaped = 0;
        for (w, word) in ex.into_iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let cpu = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                reaped += self.queues[core].reap_for(cpu);
            }
        }
        self.robust
            .reaped_states
            .fetch_add(reaped, Ordering::Relaxed);
        reaped
    }

    /// Rejoins a previously excluded `core` to the frontier. **Owner-core
    /// contract**: only the core's own thread may call this, and it must
    /// have flushed its entire local cache first — while excluded its
    /// invalidations were reaped undelivered, so any cached translation
    /// may be stale ("leak, never corrupt" leaks the states, the flush
    /// restores coherence).
    ///
    /// The core's tick is fast-forwarded to the cached frontier before
    /// the exclusion bit clears, so its stale (low) tick can never drag
    /// dues computed after the rejoin below what live cores already
    /// promised. Returns `false` if the core wasn't excluded.
    pub fn rejoin(&self, core: usize) -> bool {
        if core >= self.queues.len() || !self.excluded.test(core, Ordering::Acquire) {
            return false;
        }
        // Mask transition: under the lock the cached frontier cannot
        // advance past this core — live-set scans are serialized out,
        // and a racing full-set scan (a thread that still observed zero
        // exclusions) includes this core's tick, so it can only publish
        // values ≤ it. The catch-up below therefore closes the race for
        // good: once the bit clears, every scan sees the caught-up tick.
        let _guard = self.transition.lock();
        let f = self.frontier.get();
        if self.ticks[core].load(Ordering::Acquire) < f {
            // Owner-core contract makes this store single-writer.
            self.ticks[core].store(f, Ordering::Release);
        }
        self.excluded.clear(core);
        self.excluded_count.fetch_sub(1, Ordering::AcqRel);
        self.robust.rejoins.fetch_add(1, Ordering::Relaxed);
        self.robust.exclusion_events.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Arms a panic fence for `core`'s sweep/reclaim critical section:
    /// if the scope unwinds before [`SweepGuard::complete`], the core is
    /// poisoned (excluded) so only its shard degrades.
    pub fn sweep_guard(&self, core: usize) -> SweepGuard<'_> {
        SweepGuard {
            registry: self,
            core,
            armed: true,
        }
    }

    /// One-pass snapshot of every runtime counter (see [`RtStats`]).
    /// Aggregation saturates; the snapshot is racy per-field but each
    /// field is internally consistent enough for monitoring and tuning.
    pub fn stats(&self) -> RtStats {
        let mut min_tick = u64::MAX;
        let mut min_live = u64::MAX;
        let mut max_tick = 0u64;
        let mut any = false;
        let mut any_live = false;
        let mut any_excluded = false;
        for (core, t) in self.ticks.iter().enumerate() {
            let v = t.load(Ordering::Acquire);
            min_tick = min_tick.min(v);
            max_tick = max_tick.max(v);
            any = true;
            if self.excluded.test(core, Ordering::Acquire) {
                any_excluded = true;
            } else {
                min_live = min_live.min(v);
                any_live = true;
            }
        }
        let cached_frontier = self.frontier.get();
        if !any {
            min_tick = 0;
        }
        if !any_live {
            min_live = cached_frontier;
        } else if any_excluded {
            // Same cached-frontier floor as `min_live_tick()`: the
            // snapshot races mask transitions, and the floor is the one
            // stand-in that never passes a rejoining core's tick.
            min_live = min_live.min(cached_frontier);
        }
        RtStats {
            cores: self.queues.len(),
            states_saved: self.states_saved(),
            overflows: self.overflows(),
            min_tick,
            min_live_tick: min_live,
            max_tick,
            cached_frontier,
            reclaim_lag_ticks: max_tick.saturating_sub(cached_frontier),
            excluded_cores: self.excluded_count.load(Ordering::Acquire),
            stall_exclusions: self.robust.stall_exclusions.load(Ordering::Relaxed),
            panic_poisons: self.robust.panic_poisons.load(Ordering::Relaxed),
            rejoins: self.robust.rejoins.load(Ordering::Relaxed),
            reaped_states: self.robust.reaped_states.load(Ordering::Relaxed),
            exclusion_events: self.robust.exclusion_events.load(Ordering::Acquire),
            reclaim_debt: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn inv(mm: u64) -> RtInvalidation {
        RtInvalidation {
            mm,
            start: 0x1000,
            end: 0x2000,
        }
    }

    #[test]
    fn publish_sweep_retire_roundtrip() {
        let r = RtRegistry::new(3, 4);
        r.publish(0, inv(1), 0b110).unwrap();
        assert_eq!(r.queue(0).active_count(), 1);

        let w1 = r.sweep(1);
        assert_eq!(w1, vec![inv(1)]);
        // Still active: core 2 hasn't swept.
        assert_eq!(r.queue(0).active_count(), 1);

        let w2 = r.sweep(2);
        assert_eq!(w2, vec![inv(1)]);
        assert_eq!(r.queue(0).active_count(), 0);

        // A second sweep finds nothing.
        assert!(r.sweep(1).is_empty());
        assert_eq!(r.states_saved(), 1);
    }

    #[test]
    fn sweep_skips_unrelated_cores() {
        let r = RtRegistry::new(4, 4);
        r.publish(0, inv(1), 0b0010).unwrap(); // only core 1
        assert!(r.sweep(2).is_empty());
        assert!(r.sweep(3).is_empty());
        assert_eq!(r.sweep(1), vec![inv(1)]);
    }

    #[test]
    fn overflow_reports_error() {
        let r = RtRegistry::new(2, 2);
        r.publish(0, inv(1), 0b10).unwrap();
        r.publish(0, inv(2), 0b10).unwrap();
        assert_eq!(r.publish(0, inv(3), 0b10), Err(PublishError));
        assert_eq!(r.overflows(), 1);
        // After core 1 sweeps, slots recycle.
        assert_eq!(r.sweep(1).len(), 2);
        assert!(r.publish(0, inv(3), 0b10).is_ok());
    }

    #[test]
    fn broadcast_targets_everyone_else() {
        let r = RtRegistry::new(5, 4);
        r.publish_broadcast(2, inv(9)).unwrap();
        for core in [0, 1, 3, 4] {
            assert_eq!(r.sweep(core).len(), 1, "core {core} must see it");
        }
        assert!(r.sweep(2).is_empty(), "initiator is not targeted");
        assert_eq!(r.queue(2).active_count(), 0);
    }

    #[test]
    fn ticks_and_min_tick() {
        let r = RtRegistry::new(3, 4);
        assert_eq!(r.min_tick(), 0);
        r.sweep(0);
        r.sweep(0);
        r.sweep(1);
        assert_eq!(r.tick_of(0), 2);
        assert_eq!(r.min_tick(), 0, "core 2 never ticked");
        r.sweep(2);
        assert_eq!(r.min_tick(), 1);
    }

    #[test]
    fn cached_frontier_tracks_but_never_leads_min_tick() {
        let r = RtRegistry::new(3, 4);
        assert_eq!(r.cached_frontier(), 0);
        for _ in 0..5 {
            r.sweep(0);
            r.sweep(1);
            assert!(r.cached_frontier() <= r.min_tick());
        }
        // Core 2 never swept: the cache must still be pinned at 0.
        assert_eq!(r.min_tick(), 0);
        assert_eq!(r.cached_frontier(), 0);
        r.sweep(2);
        r.sweep(2);
        // Announce trigger + forced refresh converge the cache.
        assert_eq!(r.advance_frontier(), 2);
        assert_eq!(r.cached_frontier(), 2);
        assert_eq!(r.min_tick(), 2);
    }

    #[test]
    fn sweep_into_appends_without_clearing() {
        let r = RtRegistry::new(2, 4);
        let mut buf = vec![inv(99)];
        r.publish(0, inv(1), 0b10).unwrap();
        r.sweep_into(1, &mut buf);
        assert_eq!(buf, vec![inv(99), inv(1)]);
        r.publish(0, inv(2), 0b10).unwrap();
        buf.clear();
        r.sweep_pending_into(1, &mut buf);
        assert_eq!(buf, vec![inv(2)]);
    }

    #[test]
    fn per_core_counters_aggregate_on_read() {
        let r = RtRegistry::new(4, 1);
        r.publish(0, inv(1), 0b10).unwrap();
        r.publish(1, inv(2), 0b100).unwrap();
        r.publish(2, inv(3), 0b10).unwrap();
        assert_eq!(r.states_saved(), 3);
        assert_eq!(r.publish(0, inv(4), 0b10), Err(PublishError));
        assert_eq!(r.publish(2, inv(5), 0b10), Err(PublishError));
        assert_eq!(r.overflows(), 2);
    }

    #[test]
    fn publish_batch_claims_slots_in_order_with_one_fence() {
        let r = RtRegistry::new(3, 4);
        let batch = [
            (inv(1), [0b110u64, 0, 0, 0]),
            (inv(2), [0b110u64, 0, 0, 0]),
            (inv(3), [0b010u64, 0, 0, 0]),
        ];
        let mut slots = Vec::new();
        r.publish_batch(0, &batch, &mut slots).unwrap();
        assert_eq!(slots, vec![0, 1, 2]);
        assert_eq!(r.queue(0).active_count(), 3);
        assert_eq!(r.states_saved(), 3);
        assert_eq!(r.sweep_pending(1).len(), 3);
        assert_eq!(r.sweep_pending(2).len(), 2);
        assert_eq!(r.queue(0).active_count(), 0);
        // Rows drained: nothing left to visit.
        assert!(r.sweep_pending(1).is_empty());
    }

    #[test]
    fn publish_batch_is_all_or_nothing() {
        let r = RtRegistry::new(2, 3);
        r.publish(0, inv(1), 0b10).unwrap();
        let batch = [
            (inv(2), [0b10u64, 0, 0, 0]),
            (inv(3), [0b10u64, 0, 0, 0]),
            (inv(4), [0b10u64, 0, 0, 0]),
        ];
        let mut slots = Vec::new();
        // 3 entries, 2 free slots: nothing may be published.
        assert_eq!(r.publish_batch(0, &batch, &mut slots), Err(PublishError));
        assert!(slots.is_empty());
        assert_eq!(r.queue(0).active_count(), 1);
        assert_eq!(r.overflows(), 1);
        // The two-entry prefix fits.
        r.publish_batch(0, &batch[..2], &mut slots).unwrap();
        assert_eq!(slots.len(), 2);
        assert_eq!(r.sweep_pending(1).len(), 3);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let r = RtRegistry::new(2, 2);
        let mut slots = vec![99];
        r.publish_batch(0, &[], &mut slots).unwrap();
        assert!(slots.is_empty());
        assert_eq!(r.states_saved(), 0);
        assert_eq!(r.queue(0).active_count(), 0);
    }

    #[test]
    fn pending_sweep_matches_full_sweep() {
        // Publish a scatter of states from several cores, then sweep one
        // target core both ways on identical registries: the pending
        // sweep must deliver exactly the invalidations the full scan
        // does.
        let build = || {
            let r = RtRegistry::new(8, 8);
            r.publish(0, inv(1), 0b0000_0110).unwrap();
            r.publish(3, inv(2), 0b0000_0010).unwrap();
            r.publish(5, inv(3), 0b1111_1110).unwrap();
            r.publish(7, inv(4), 0b0000_1000).unwrap(); // not core 1
            r
        };
        let full = build();
        let fast = build();
        let mut a = full.sweep(1);
        let mut b = fast.sweep_pending(1);
        a.sort_unstable_by_key(|i| i.mm);
        b.sort_unstable_by_key(|i| i.mm);
        assert_eq!(a, b);
        assert_eq!(b.len(), 3);
        // A second pending sweep is an empty row, not a rescan.
        assert!(fast.sweep_pending(1).is_empty());
    }

    #[test]
    fn stale_pending_bits_are_harmless() {
        let r = RtRegistry::new(4, 4);
        r.publish(0, inv(1), 0b0110).unwrap();
        // Core 2 sweeps via the full scan, which clears its mask bit but
        // leaves its pending bit stale-set.
        assert_eq!(r.sweep(2).len(), 1);
        // The stale bit costs one empty visit and is dropped.
        assert!(r.sweep_pending(2).is_empty());
        // Core 1's bit is still live.
        assert_eq!(r.sweep_pending(1).len(), 1);
    }

    #[test]
    fn concurrent_batch_publish_and_pending_sweep_loses_nothing() {
        // One publisher batching 4 states at a time, three pending-sweep
        // consumers. Every state targets all three; each must deliver
        // every mm exactly once.
        let r = Arc::new(RtRegistry::new(4, 1024));
        let total = 500u64;
        let publisher = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut slots = Vec::new();
                let mut published = 0;
                while published < total {
                    let k = (total - published).min(4);
                    let batch: Vec<_> = (published..published + k)
                        .map(|mm| (inv(mm), [0b1110u64, 0, 0, 0]))
                        .collect();
                    if r.publish_batch(0, &batch, &mut slots).is_ok() {
                        published += k;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let sweepers: Vec<_> = (1..4)
            .map(|core| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while seen.len() < total as usize {
                        for w in r.sweep_pending(core) {
                            seen.push(w.mm);
                        }
                        std::thread::yield_now();
                    }
                    seen.sort_unstable();
                    seen
                })
            })
            .collect();
        publisher.join().unwrap();
        for s in sweepers {
            let seen = s.join().unwrap();
            assert_eq!(seen, (0..total).collect::<Vec<_>>());
        }
        assert_eq!(r.queue(0).active_count(), 0);
        assert_eq!(r.states_saved(), total);
    }

    #[test]
    fn concurrent_publish_and_sweep_loses_nothing() {
        // One publisher core, three sweeper cores. Every published state
        // must be seen exactly once by every targeted sweeper.
        let r = Arc::new(RtRegistry::new(4, 1024));
        let total = 500u64;
        let publisher = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut published = 0;
                while published < total {
                    if r.publish(0, inv(published), 0b1110).is_ok() {
                        published += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let sweepers: Vec<_> = (1..4)
            .map(|core| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while seen.len() < total as usize {
                        for w in r.sweep(core) {
                            seen.push(w.mm);
                        }
                        std::thread::yield_now();
                    }
                    seen.sort_unstable();
                    seen
                })
            })
            .collect();
        publisher.join().unwrap();
        for s in sweepers {
            let seen = s.join().unwrap();
            assert_eq!(seen.len(), total as usize);
            // No duplicates, nothing lost.
            assert_eq!(seen, (0..total).collect::<Vec<_>>());
        }
        assert_eq!(r.queue(0).active_count(), 0);
        assert_eq!(r.states_saved(), total);
    }

    #[test]
    fn excluding_a_core_reaps_and_unpins_the_frontier() {
        let r = RtRegistry::new(3, 4);
        r.publish(0, inv(1), 0b110).unwrap();
        // Cores 1 sweeps, core 2 never does: frontier pinned at 0 and the
        // slot stays active on core 2's behalf.
        for _ in 0..4 {
            r.sweep(0);
            r.sweep(1);
        }
        assert_eq!(r.cached_frontier(), 0);
        assert_eq!(r.queue(0).active_count(), 1);

        assert!(r.exclude_core(2));
        assert!(!r.exclude_core(2), "second exclude loses the race");
        assert!(r.is_excluded(2));
        let st = r.stats();
        assert_eq!(st.excluded_cores, 1);
        assert_eq!(st.stall_exclusions, 1);
        assert_eq!(st.reaped_states, 1, "undelivered state is leaked");
        assert_eq!(r.queue(0).active_count(), 0, "reap retired the pinned slot");
        // Frontier now tracks the live minimum (both live cores at 4).
        assert_eq!(r.cached_frontier(), 4);
        assert_eq!(r.min_live_tick(), 4);
        assert_eq!(r.min_tick(), 0, "reference min still sees the dead core");
    }

    #[test]
    fn publishes_skip_excluded_targets() {
        let r = RtRegistry::new(3, 2);
        r.exclude_core(2);
        // Mask reduced to live cores only.
        let idx = r.publish(0, inv(1), 0b110).unwrap();
        assert_ne!(idx, NO_SLOT);
        assert_eq!(r.sweep(1).len(), 1);
        assert_eq!(
            r.queue(0).active_count(),
            0,
            "core 2's bit was filtered out, core 1's sweep retires the slot"
        );
        // Fully-excluded target: no slot consumed, still counted saved.
        assert_eq!(r.publish(0, inv(2), 0b100).unwrap(), NO_SLOT);
        assert_eq!(r.queue(0).active_count(), 0);
        assert_eq!(r.states_saved(), 2);
    }

    #[test]
    fn batch_publish_filters_excluded_targets_in_order() {
        let r = RtRegistry::new(3, 4);
        r.exclude_core(2);
        let batch = [
            (inv(1), [0b110u64, 0, 0, 0]),
            (inv(2), [0b100u64, 0, 0, 0]), // only the dead core
            (inv(3), [0b010u64, 0, 0, 0]),
        ];
        let mut slots = Vec::new();
        r.publish_batch(0, &batch, &mut slots).unwrap();
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[1], NO_SLOT);
        assert_ne!(slots[0], NO_SLOT);
        assert_ne!(slots[2], NO_SLOT);
        assert_eq!(r.queue(0).active_count(), 2);
        assert_eq!(r.states_saved(), 3);
        assert_eq!(r.sweep(1).len(), 2);
        assert_eq!(r.queue(0).active_count(), 0);
    }

    #[test]
    fn overflow_with_exclusions_reaps_and_retries() {
        let r = RtRegistry::new(3, 2);
        // Fill both slots targeting core 2, then kill core 2: its bits pin
        // the queue.
        r.publish(0, inv(1), 0b100).unwrap();
        r.publish(0, inv(2), 0b100).unwrap();
        r.exclude_core(2);
        // Exclusion-time reap already freed the slots; publish succeeds
        // without an overflow even though the queue *was* full.
        assert!(r.publish(0, inv(3), 0b010).is_ok());
        assert_eq!(r.overflows(), 0);
    }

    #[test]
    fn rejoin_fast_forwards_the_tick() {
        let r = RtRegistry::new(2, 4);
        for _ in 0..6 {
            r.sweep(0);
        }
        r.exclude_core(1);
        assert_eq!(r.cached_frontier(), 6);
        assert!(r.rejoin(1));
        assert!(!r.rejoin(1), "already rejoined");
        assert!(!r.is_excluded(1));
        assert_eq!(
            r.tick_of(1),
            6,
            "tick fast-forwarded to the frontier so post-rejoin dues stay sound"
        );
        let st = r.stats();
        assert_eq!(st.rejoins, 1);
        assert_eq!(st.excluded_cores, 0);
        assert_eq!(st.exclusion_events, 2, "one exclude + one rejoin");
    }

    #[test]
    fn sweep_guard_poisons_only_on_panic() {
        let r = RtRegistry::new(2, 4);
        {
            let g = r.sweep_guard(0);
            assert_eq!(g.core(), 0);
            g.complete();
        }
        // A guard dropped without panic (and without complete) stays quiet.
        {
            let _g = r.sweep_guard(0);
        }
        assert_eq!(r.stats().panic_poisons, 0);

        let r = Arc::new(RtRegistry::new(2, 4));
        let r2 = Arc::clone(&r);
        let res = std::thread::spawn(move || {
            let _g = r2.sweep_guard(1);
            panic!("injected sweep death");
        })
        .join();
        assert!(res.is_err());
        assert!(r.is_excluded(1), "panicking sweep poisoned its core");
        assert_eq!(r.stats().panic_poisons, 1);
    }

    #[test]
    fn watchdog_excludes_silent_cores() {
        // 1 ms timeout: core 1 sweeps once then goes silent.
        let r = RtRegistry::with_watchdog(2, 4, 1_000_000);
        assert!(r.watchdog_enabled());
        r.sweep(0);
        r.sweep(1);
        assert_eq!(r.check_watchdog(), 0, "both cores fresh");
        std::thread::sleep(std::time::Duration::from_millis(5));
        r.sweep(0); // core 0 stays live
        assert_eq!(r.check_watchdog(), 1);
        assert!(r.is_excluded(1));
        assert!(!r.is_excluded(0));
        assert_eq!(r.stats().stall_exclusions, 1);
        // Idempotent: already excluded.
        assert_eq!(r.check_watchdog(), 0);
    }

    #[test]
    fn unannounced_sweeps_bump_ticks_but_not_the_frontier() {
        let r = RtRegistry::new(2, 4);
        let mut buf = Vec::new();
        r.publish(0, inv(1), 0b10).unwrap();
        r.sweep_into_unannounced(1, &mut buf);
        assert_eq!(buf, vec![inv(1)], "invalidations still delivered");
        r.sweep_into_unannounced(0, &mut buf);
        assert_eq!(r.min_tick(), 1);
        assert_eq!(r.cached_frontier(), 0, "announce was skipped");
        // A normal sweep (or forced refresh) catches the frontier up.
        r.sweep(0);
        r.sweep(1);
        r.advance_frontier();
        assert_eq!(r.cached_frontier(), 2);

        // Pending flavor too.
        r.publish(0, inv(2), 0b10).unwrap();
        buf.clear();
        r.sweep_pending_into_unannounced(1, &mut buf);
        assert_eq!(buf, vec![inv(2)]);
    }

    #[test]
    fn stats_snapshot_is_consistent() {
        let r = RtRegistry::new(3, 2);
        r.publish(0, inv(1), 0b110).unwrap();
        r.publish(0, inv(2), 0b110).unwrap();
        assert!(r.publish(0, inv(3), 0b110).is_err());
        r.sweep(1);
        r.sweep(1);
        let st = r.stats();
        assert_eq!(st.cores, 3);
        assert_eq!(st.states_saved, 2);
        assert_eq!(st.overflows, 1);
        assert_eq!(st.max_tick, 2);
        assert_eq!(st.min_tick, 0);
        assert_eq!(st.min_live_tick, 0);
        assert_eq!(st.reclaim_lag_ticks, 2 - st.cached_frontier);
        assert_eq!(st.excluded_cores, 0);
        assert_eq!(st.exclusion_events, 0);
    }
}
