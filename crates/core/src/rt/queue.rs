//! Lock-free Latr state queues and the all-cores registry.
//!
//! Memory layout follows §4.1: each core owns a cyclic array of states
//! "allocated from a contiguous memory region" so sweeps stream through
//! them with the prefetcher. Publication uses the paper's ordering rule:
//! "an entry is activated after setting all the fields using an atomic
//! instruction coupled with a memory barrier" — here, a release store of
//! the `active` flag after the plain field writes, paired with acquire
//! loads in the sweep.

use crate::rt::mask::{mask_first_n_except, AtomicCpuMask};
use crate::rt::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// The payload of one invalidation: which address space and which virtual
/// byte range must be flushed from the sweeper's local cache/TLB analogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtInvalidation {
    /// Address-space identifier (the `mm` pointer in the kernel).
    pub mm: u64,
    /// First byte of the range.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

/// Publishing failed because every slot is active — the caller must fall
/// back to its synchronous mechanism (IPIs in the kernel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishError;

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latr state queue full; fall back to synchronous shootdown"
        )
    }
}

impl std::error::Error for PublishError {}

/// One slot: the Latr state of §4.1 with an atomic activation flag.
#[derive(Debug)]
struct Slot {
    start: AtomicU64,
    end: AtomicU64,
    mm: AtomicU64,
    cpus: AtomicCpuMask,
    active: AtomicBool,
}

impl Slot {
    fn new() -> Self {
        Slot {
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            mm: AtomicU64::new(0),
            cpus: AtomicCpuMask::new(),
            active: AtomicBool::new(false),
        }
    }
}

/// A single core's cyclic, lock-free queue of Latr states.
///
/// Single-publisher (the owning core), multi-clearer (every sweeping
/// core). An `active` counter lets sweeps skip idle queues with a single
/// load — the contiguous-and-cheap sweep §4.1 relies on.
#[derive(Debug)]
pub struct RtQueue {
    slots: Box<[Slot]>,
    head: AtomicUsize,
    active: AtomicUsize,
}

impl RtQueue {
    /// Creates a queue of `capacity` slots (64 in the paper).
    pub fn new(capacity: usize) -> Self {
        RtQueue {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently active states (racy snapshot).
    pub fn active_count(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Publishes an invalidation for the CPUs in `cpu_words`. Only the
    /// owning core may call this (single producer).
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] when all slots are active; the caller
    /// falls back to its synchronous path.
    pub fn publish(&self, inv: RtInvalidation, cpu_words: [u64; 4]) -> Result<usize, PublishError> {
        let n = self.slots.len();
        let head = self.head.load(Ordering::Relaxed);
        for probe in 0..n {
            let idx = (head + probe) % n;
            let slot = &self.slots[idx];
            if slot.active.load(Ordering::Acquire) {
                continue;
            }
            // Fields first (plain stores)...
            slot.start.store(inv.start, Ordering::Relaxed);
            slot.end.store(inv.end, Ordering::Relaxed);
            slot.mm.store(inv.mm, Ordering::Relaxed);
            slot.cpus.store_words(cpu_words, Ordering::Relaxed);
            // ...then the activation with release ordering (§4.1's barrier).
            self.active.fetch_add(1, Ordering::Release);
            slot.active.store(true, Ordering::Release);
            self.head.store((idx + 1) % n, Ordering::Relaxed);
            return Ok(idx);
        }
        Err(PublishError)
    }

    /// Sweeps this queue on behalf of `cpu`: collects every active state
    /// naming it, clears the bit, and retires slots whose masks emptied.
    /// Idle queues cost one atomic load.
    pub fn sweep_for(&self, cpu: usize, out: &mut Vec<RtInvalidation>) {
        if self.active.load(Ordering::Acquire) == 0 {
            return;
        }
        for slot in self.slots.iter() {
            if !slot.active.load(Ordering::Acquire) {
                continue;
            }
            if !slot.cpus.test(cpu, Ordering::Acquire) {
                continue;
            }
            // Read the payload before clearing our bit: once the mask
            // empties the slot may be recycled by the publisher.
            let inv = RtInvalidation {
                mm: slot.mm.load(Ordering::Relaxed),
                start: slot.start.load(Ordering::Relaxed),
                end: slot.end.load(Ordering::Relaxed),
            };
            let (was_set, now_empty) = slot.cpus.clear(cpu);
            if was_set {
                out.push(inv);
                if now_empty {
                    // Last core out retires the state; the CAS makes the
                    // cross-word emptiness race benign — exactly one
                    // retirer decrements the counter.
                    if slot
                        .active
                        .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.active.fetch_sub(1, Ordering::Release);
                    }
                }
            }
        }
    }
}

/// All cores' queues plus per-core tick counters: the complete §4.1
/// structure ("64 Latr states per core, allocated from a contiguous
/// memory region").
#[derive(Debug)]
pub struct RtRegistry {
    queues: Vec<RtQueue>,
    ticks: Vec<AtomicU64>,
    saved: AtomicU64,
    overflows: AtomicU64,
}

impl RtRegistry {
    /// Creates the registry for `cores` cores with `states_per_core` slots
    /// each.
    pub fn new(cores: usize, states_per_core: usize) -> Self {
        RtRegistry {
            queues: (0..cores).map(|_| RtQueue::new(states_per_core)).collect(),
            ticks: (0..cores).map(|_| AtomicU64::new(0)).collect(),
            saved: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.queues.len()
    }

    /// One core's queue.
    pub fn queue(&self, core: usize) -> &RtQueue {
        &self.queues[core]
    }

    /// Publishes an invalidation from `core` targeting the CPUs whose bits
    /// are set in `target_bits` (bit *i* of word *w* = CPU `w*64+i`).
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] on queue overflow.
    pub fn publish(
        &self,
        core: usize,
        inv: RtInvalidation,
        target_bits: u64,
    ) -> Result<usize, PublishError> {
        self.publish_wide(core, inv, [target_bits, 0, 0, 0])
    }

    /// [`publish`](Self::publish) with a full 256-bit target mask.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] on queue overflow.
    pub fn publish_wide(
        &self,
        core: usize,
        inv: RtInvalidation,
        target_words: [u64; 4],
    ) -> Result<usize, PublishError> {
        match self.queues[core].publish(inv, target_words) {
            Ok(idx) => {
                self.saved.fetch_add(1, Ordering::Relaxed);
                Ok(idx)
            }
            Err(e) => {
                self.overflows.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Publishes to every core except the initiator.
    ///
    /// # Errors
    ///
    /// Returns [`PublishError`] on queue overflow.
    pub fn publish_broadcast(
        &self,
        core: usize,
        inv: RtInvalidation,
    ) -> Result<usize, PublishError> {
        self.publish_wide(core, inv, mask_first_n_except(self.cores(), core))
    }

    /// The sweep (§4.1): scans *every* core's queue for states naming
    /// `core`, clears its bits, bumps its tick counter, and returns the
    /// invalidations the caller must apply locally.
    pub fn sweep(&self, core: usize) -> Vec<RtInvalidation> {
        let mut out = Vec::new();
        for q in &self.queues {
            q.sweep_for(core, &mut out);
        }
        self.ticks[core].fetch_add(1, Ordering::Release);
        out
    }

    /// A core's tick count.
    pub fn tick_of(&self, core: usize) -> u64 {
        self.ticks[core].load(Ordering::Acquire)
    }

    /// The minimum tick across all cores — the reclamation frontier: an
    /// object parked when every core's tick was ≥ `t` may be freed once
    /// `min_tick() ≥ t + 2` (§4.2's two-cycle rule).
    pub fn min_tick(&self) -> u64 {
        self.ticks
            .iter()
            .map(|t| t.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }

    /// States successfully published.
    pub fn states_saved(&self) -> u64 {
        self.saved.load(Ordering::Relaxed)
    }

    /// Publish attempts that overflowed.
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn inv(mm: u64) -> RtInvalidation {
        RtInvalidation {
            mm,
            start: 0x1000,
            end: 0x2000,
        }
    }

    #[test]
    fn publish_sweep_retire_roundtrip() {
        let r = RtRegistry::new(3, 4);
        r.publish(0, inv(1), 0b110).unwrap();
        assert_eq!(r.queue(0).active_count(), 1);

        let w1 = r.sweep(1);
        assert_eq!(w1, vec![inv(1)]);
        // Still active: core 2 hasn't swept.
        assert_eq!(r.queue(0).active_count(), 1);

        let w2 = r.sweep(2);
        assert_eq!(w2, vec![inv(1)]);
        assert_eq!(r.queue(0).active_count(), 0);

        // A second sweep finds nothing.
        assert!(r.sweep(1).is_empty());
        assert_eq!(r.states_saved(), 1);
    }

    #[test]
    fn sweep_skips_unrelated_cores() {
        let r = RtRegistry::new(4, 4);
        r.publish(0, inv(1), 0b0010).unwrap(); // only core 1
        assert!(r.sweep(2).is_empty());
        assert!(r.sweep(3).is_empty());
        assert_eq!(r.sweep(1), vec![inv(1)]);
    }

    #[test]
    fn overflow_reports_error() {
        let r = RtRegistry::new(2, 2);
        r.publish(0, inv(1), 0b10).unwrap();
        r.publish(0, inv(2), 0b10).unwrap();
        assert_eq!(r.publish(0, inv(3), 0b10), Err(PublishError));
        assert_eq!(r.overflows(), 1);
        // After core 1 sweeps, slots recycle.
        assert_eq!(r.sweep(1).len(), 2);
        assert!(r.publish(0, inv(3), 0b10).is_ok());
    }

    #[test]
    fn broadcast_targets_everyone_else() {
        let r = RtRegistry::new(5, 4);
        r.publish_broadcast(2, inv(9)).unwrap();
        for core in [0, 1, 3, 4] {
            assert_eq!(r.sweep(core).len(), 1, "core {core} must see it");
        }
        assert!(r.sweep(2).is_empty(), "initiator is not targeted");
        assert_eq!(r.queue(2).active_count(), 0);
    }

    #[test]
    fn ticks_and_min_tick() {
        let r = RtRegistry::new(3, 4);
        assert_eq!(r.min_tick(), 0);
        r.sweep(0);
        r.sweep(0);
        r.sweep(1);
        assert_eq!(r.tick_of(0), 2);
        assert_eq!(r.min_tick(), 0, "core 2 never ticked");
        r.sweep(2);
        assert_eq!(r.min_tick(), 1);
    }

    #[test]
    fn concurrent_publish_and_sweep_loses_nothing() {
        // One publisher core, three sweeper cores. Every published state
        // must be seen exactly once by every targeted sweeper.
        let r = Arc::new(RtRegistry::new(4, 1024));
        let total = 500u64;
        let publisher = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut published = 0;
                while published < total {
                    if r.publish(0, inv(published), 0b1110).is_ok() {
                        published += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let sweepers: Vec<_> = (1..4)
            .map(|core| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while seen.len() < total as usize {
                        for w in r.sweep(core) {
                            seen.push(w.mm);
                        }
                        std::thread::yield_now();
                    }
                    seen.sort_unstable();
                    seen
                })
            })
            .collect();
        publisher.join().unwrap();
        for s in sweepers {
            let seen = s.join().unwrap();
            assert_eq!(seen.len(), total as usize);
            // No duplicates, nothing lost.
            assert_eq!(seen, (0..total).collect::<Vec<_>>());
        }
        assert_eq!(r.queue(0).active_count(), 0);
        assert_eq!(r.states_saved(), total);
    }
}
