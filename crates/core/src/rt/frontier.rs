//! The cached reclamation frontier.
//!
//! The reference frontier is [`RtRegistry::min_tick`]: an O(cores) scan
//! of every per-core tick counter, paid on **every** `defer`/`collect`.
//! At 120+ real threads that scan touches 120 cache lines each time and
//! is itself the scaling bottleneck the paper's reclamation path must
//! avoid.
//!
//! [`ReclaimFrontier`] caches a *lower bound* of the minimum in one
//! global atomic, advanced crossbeam-epoch style: sweepers *announce*
//! their progress (their per-core tick bump) and only the core that may
//! have been the laggard — its pre-bump tick equalled the cached value —
//! re-scans and publishes a fresh minimum with a CAS-max. Everyone else
//! reads the frontier with a single uncontended load.
//!
//! # Invariant (loom-checked)
//!
//! The cached value never advances past an unswept core:
//! `cached ≤ min_tick()` at every instant. It holds because per-core
//! ticks are monotonic — a scan's observed minimum is a valid lower
//! bound of the true minimum *forever after* — and [`advance_to`] only
//! moves the cache up to such an observed minimum, monotonically
//! (CAS-max, never a blind store).
//!
//! # Liveness
//!
//! The announce trigger alone can miss: the laggard may bump its tick
//! after a scanner read it but before the scanner's CAS lands, so no
//! core ever observes `old == cached` again. [`RtRegistry`] therefore
//! also forces a refresh every [`REFRESH_TICKS`] sweeps per core — the
//! cache then lags the true minimum by a bounded number of sweeps
//! instead of stalling forever, while the O(cores) scan stays off the
//! common sweep path.
//!
//! [`RtRegistry`]: crate::rt::RtRegistry
//! [`RtRegistry::min_tick`]: crate::rt::RtRegistry::min_tick
//! [`advance_to`]: ReclaimFrontier::advance_to

use crate::rt::pad::CachePadded;
use crate::rt::sync::atomic::{AtomicU64, Ordering};

/// Force a frontier re-scan every this many sweeps of a single core, as
/// the liveness backstop for the announce trigger (see module docs).
pub const REFRESH_TICKS: u64 = 32;

/// A monotonically advancing cached lower bound of the registry's
/// minimum tick.
#[derive(Debug)]
pub struct ReclaimFrontier {
    cached: CachePadded<AtomicU64>,
}

impl Default for ReclaimFrontier {
    fn default() -> Self {
        Self::new()
    }
}

impl ReclaimFrontier {
    /// A frontier at tick 0.
    pub fn new() -> Self {
        ReclaimFrontier {
            cached: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The cached frontier: one atomic load, guaranteed `≤ min_tick()`.
    pub fn get(&self) -> u64 {
        self.cached.load(Ordering::Acquire)
    }

    /// Publishes an observed minimum tick, advancing the cache
    /// monotonically (CAS-max: a stale observation never moves it
    /// backwards). Returns the frontier after the publish.
    pub fn advance_to(&self, observed_min: u64) -> u64 {
        let mut current = self.cached.load(Ordering::Acquire);
        while current < observed_min {
            match self.cached.compare_exchange(
                current,
                observed_min,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return observed_min,
                Err(now) => current = now,
            }
        }
        current
    }
}

/// Real-time watchdog state for the cached frontier: per-core wall-clock
/// timestamps of the last completed sweep, plus the timeout that declares
/// a core dead.
///
/// This is the wall-clock analogue of the simulator's `watchdog_ticks`
/// sweep watchdog: in the deterministic machine a core that misses its
/// sweep for N ticks trips the fallback, but real OS threads have no
/// global tick — a preempted, deadlocked, or dead thread simply stops
/// calling `finish_sweep`, pinning the frontier (and with it all
/// reclamation) forever. The watchdog bounds that: a core whose last
/// sweep is older than `timeout_ns` may be *excluded* from the frontier
/// scan by [`RtRegistry::check_watchdog`], after which the frontier
/// advances over it ("leak, never corrupt": the dead core's undelivered
/// invalidations are dropped, and it must flush its local cache before
/// rejoining).
///
/// Timestamps are nanoseconds since the watchdog's construction. Under
/// `cfg(loom)` the clock is virtual ([`advance_clock`]) so model runs
/// stay deterministic.
///
/// [`RtRegistry::check_watchdog`]: crate::rt::RtRegistry::check_watchdog
/// [`advance_clock`]: FrontierWatchdog::advance_clock
#[derive(Debug)]
pub struct FrontierWatchdog {
    timeout_ns: u64,
    /// Last-sweep timestamp per core, one cache line each: written by the
    /// owning sweeper every sweep, read only by watchdog scans.
    last_sweep_ns: Box<[CachePadded<AtomicU64>]>,
    #[cfg(not(loom))]
    epoch: std::time::Instant,
    #[cfg(loom)]
    clock_ns: CachePadded<AtomicU64>,
}

impl FrontierWatchdog {
    /// Creates a watchdog for `cores` cores. A core that has not swept
    /// within `timeout_ns` of "now" (or of construction, if it never
    /// swept) is considered stalled.
    pub fn new(cores: usize, timeout_ns: u64) -> Self {
        FrontierWatchdog {
            timeout_ns,
            last_sweep_ns: (0..cores)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            #[cfg(not(loom))]
            epoch: std::time::Instant::now(),
            #[cfg(loom)]
            clock_ns: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The stall timeout in nanoseconds.
    pub fn timeout_ns(&self) -> u64 {
        self.timeout_ns
    }

    /// Nanoseconds since construction.
    #[cfg(not(loom))]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Nanoseconds on the virtual loom clock.
    #[cfg(loom)]
    pub fn now_ns(&self) -> u64 {
        self.clock_ns.load(Ordering::Acquire)
    }

    /// Advances the virtual clock (loom only — real time is not
    /// deterministic under the model checker).
    #[cfg(loom)]
    pub fn advance_clock(&self, ns: u64) {
        self.clock_ns.fetch_add(ns, Ordering::AcqRel);
    }

    /// Records that `core` just completed a sweep.
    pub fn record_sweep(&self, core: usize) {
        self.last_sweep_ns[core].store(self.now_ns(), Ordering::Release);
    }

    /// `core`'s last recorded sweep, in nanoseconds since construction
    /// (0 if it never swept).
    pub fn last_sweep_ns(&self, core: usize) -> u64 {
        self.last_sweep_ns[core].load(Ordering::Acquire)
    }

    /// Whether `core` has gone longer than the timeout without sweeping,
    /// as of `now_ns`.
    pub fn timed_out(&self, core: usize, now_ns: u64) -> bool {
        now_ns.saturating_sub(self.last_sweep_ns(core)) > self.timeout_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let f = ReclaimFrontier::new();
        assert_eq!(f.get(), 0);
        assert_eq!(f.advance_to(3), 3);
        // A stale (lower) observation never regresses the cache.
        assert_eq!(f.advance_to(1), 3);
        assert_eq!(f.get(), 3);
        assert_eq!(f.advance_to(7), 7);
    }

    #[test]
    fn watchdog_times_out_only_stale_cores() {
        let w = FrontierWatchdog::new(2, 1_000_000); // 1 ms
        w.record_sweep(0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let now = w.now_ns();
        assert!(w.timed_out(0, now), "core 0 last swept >1ms ago");
        assert!(w.timed_out(1, now), "core 1 never swept");
        w.record_sweep(1);
        assert!(
            !w.timed_out(1, w.now_ns()),
            "a fresh sweep clears the stall"
        );

        // A generous timeout never trips in-test.
        let w = FrontierWatchdog::new(1, 60_000_000_000);
        assert!(!w.timed_out(0, w.now_ns()));
        assert_eq!(w.timeout_ns(), 60_000_000_000);
    }

    #[test]
    fn concurrent_advances_keep_the_max() {
        use std::sync::Arc;
        let f = Arc::new(ReclaimFrontier::new());
        let handles: Vec<_> = (1..=8u64)
            .map(|n| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for v in 0..=n * 10 {
                        f.advance_to(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.get(), 80);
    }
}
