//! The cached reclamation frontier.
//!
//! The reference frontier is [`RtRegistry::min_tick`]: an O(cores) scan
//! of every per-core tick counter, paid on **every** `defer`/`collect`.
//! At 120+ real threads that scan touches 120 cache lines each time and
//! is itself the scaling bottleneck the paper's reclamation path must
//! avoid.
//!
//! [`ReclaimFrontier`] caches a *lower bound* of the minimum in one
//! global atomic, advanced crossbeam-epoch style: sweepers *announce*
//! their progress (their per-core tick bump) and only the core that may
//! have been the laggard — its pre-bump tick equalled the cached value —
//! re-scans and publishes a fresh minimum with a CAS-max. Everyone else
//! reads the frontier with a single uncontended load.
//!
//! # Invariant (loom-checked)
//!
//! The cached value never advances past an unswept core:
//! `cached ≤ min_tick()` at every instant. It holds because per-core
//! ticks are monotonic — a scan's observed minimum is a valid lower
//! bound of the true minimum *forever after* — and [`advance_to`] only
//! moves the cache up to such an observed minimum, monotonically
//! (CAS-max, never a blind store).
//!
//! # Liveness
//!
//! The announce trigger alone can miss: the laggard may bump its tick
//! after a scanner read it but before the scanner's CAS lands, so no
//! core ever observes `old == cached` again. [`RtRegistry`] therefore
//! also forces a refresh every [`REFRESH_TICKS`] sweeps per core — the
//! cache then lags the true minimum by a bounded number of sweeps
//! instead of stalling forever, while the O(cores) scan stays off the
//! common sweep path.
//!
//! [`RtRegistry`]: crate::rt::RtRegistry
//! [`RtRegistry::min_tick`]: crate::rt::RtRegistry::min_tick
//! [`advance_to`]: ReclaimFrontier::advance_to

use crate::rt::pad::CachePadded;
use crate::rt::sync::atomic::{AtomicU64, Ordering};

/// Force a frontier re-scan every this many sweeps of a single core, as
/// the liveness backstop for the announce trigger (see module docs).
pub const REFRESH_TICKS: u64 = 32;

/// A monotonically advancing cached lower bound of the registry's
/// minimum tick.
#[derive(Debug)]
pub struct ReclaimFrontier {
    cached: CachePadded<AtomicU64>,
}

impl Default for ReclaimFrontier {
    fn default() -> Self {
        Self::new()
    }
}

impl ReclaimFrontier {
    /// A frontier at tick 0.
    pub fn new() -> Self {
        ReclaimFrontier {
            cached: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The cached frontier: one atomic load, guaranteed `≤ min_tick()`.
    pub fn get(&self) -> u64 {
        self.cached.load(Ordering::Acquire)
    }

    /// Publishes an observed minimum tick, advancing the cache
    /// monotonically (CAS-max: a stale observation never moves it
    /// backwards). Returns the frontier after the publish.
    pub fn advance_to(&self, observed_min: u64) -> u64 {
        let mut current = self.cached.load(Ordering::Acquire);
        while current < observed_min {
            match self.cached.compare_exchange(
                current,
                observed_min,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return observed_min,
                Err(now) => current = now,
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let f = ReclaimFrontier::new();
        assert_eq!(f.get(), 0);
        assert_eq!(f.advance_to(3), 3);
        // A stale (lower) observation never regresses the cache.
        assert_eq!(f.advance_to(1), 3);
        assert_eq!(f.get(), 3);
        assert_eq!(f.advance_to(7), 7);
    }

    #[test]
    fn concurrent_advances_keep_the_max() {
        use std::sync::Arc;
        let f = Arc::new(ReclaimFrontier::new());
        let handles: Vec<_> = (1..=8u64)
            .map(|n| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for v in 0..=n * 10 {
                        f.advance_to(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.get(), 80);
    }
}
