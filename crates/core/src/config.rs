//! Latr configuration knobs (§4.1, §8 and the ablation benches).

use serde::{Deserialize, Serialize};

/// Tunables of the Latr mechanism. Defaults match the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatrConfig {
    /// Latr states per core (§4.1: 64; §8 notes the trade-off between
    /// queue size and sweep cost — ablated in `bench --bin ablations`).
    pub states_per_core: usize,
    /// Scheduler ticks to wait before reclaiming virtual and physical
    /// pages (§4.2: two ticks = 2 ms).
    pub reclaim_ticks: u32,
    /// Whether to also sweep on context switches (§4.1: tick *or* context
    /// switch, whichever comes first). Turning this off is an ablation.
    pub sweep_on_context_switch: bool,
    /// Whether lazy handling of AutoNUMA hint-unmaps is enabled (§4.3).
    pub lazy_migration: bool,
    /// Sweep watchdog: if a published state's CPU bitmask has not fully
    /// cleared after this many scheduler ticks, targeted IPIs finish the
    /// laggard cores, bounding reclamation latency under stalled sweepers
    /// and lost interrupts. `0` disables the watchdog (the paper's
    /// mechanism: reclamation waits for sweeps, however long they take).
    /// The default (8 ticks) is far above the healthy-path worst case of
    /// `reclaim_ticks`, so escalations never fire in fault-free runs.
    pub watchdog_ticks: u32,
    /// Adaptive IPI fallback: under sustained queue-overflow pressure,
    /// route *new* shootdowns synchronously instead of burning a fallback
    /// round per overflow, returning to lazy mode once occupancy drains.
    pub adaptive_fallback: bool,
    /// Enter synchronous mode when a queue's occupancy reaches this
    /// percentage of its capacity (hysteresis high-water mark).
    pub fallback_enter_pct: u32,
    /// Leave synchronous mode once every queue's occupancy has drained to
    /// at most this percentage (hysteresis low-water mark).
    pub fallback_exit_pct: u32,
    /// Gate each reclamation package on its covering Latr state: the
    /// package is not released — deadline or not — until the state's CPU
    /// bitmask has cleared. The deadline alone is only a proof of safety
    /// when every core actually swept; under a stalled sweeper or a lost
    /// interrupt it is not. Disabling this recovers the paper's
    /// deadline-only release (unsafe under injected faults).
    pub gate_reclaim: bool,
    /// Run the straightforward full-scan sweep (the executable spec)
    /// instead of the pending-bitmap fast path. Both produce bit-identical
    /// event streams — the differential suite asserts it — so this knob
    /// only trades speed for obviousness. The default follows the
    /// `reference` cargo feature.
    #[serde(default = "default_reference_sweep")]
    pub reference_sweep: bool,
    /// Memory-pressure escalation (DESIGN.md §14): how many of the oldest
    /// gated reclamation packages are expedited — owner-local sweep plus
    /// targeted IPIs, the watchdog's mechanism fired early — per pressure
    /// event or allocation stall. `0` disables expedition entirely (the
    /// pressure bench's "bare lazy" arm).
    #[serde(default = "default_expedite_batch")]
    pub expedite_batch: usize,
    /// Below the min watermark, force the adaptive fallback into
    /// synchronous mode so no *new* frees are parked while the reserve is
    /// breached; exit waits for every node to recover to Normal pressure
    /// in addition to the usual queue-drain hysteresis. Requires
    /// `adaptive_fallback`.
    #[serde(default = "default_pressure_sync")]
    pub pressure_sync: bool,
}

fn default_reference_sweep() -> bool {
    cfg!(feature = "reference")
}

fn default_expedite_batch() -> usize {
    8
}

fn default_pressure_sync() -> bool {
    true
}

impl Default for LatrConfig {
    fn default() -> Self {
        LatrConfig {
            states_per_core: 64,
            reclaim_ticks: 2,
            sweep_on_context_switch: true,
            lazy_migration: true,
            watchdog_ticks: 8,
            adaptive_fallback: true,
            fallback_enter_pct: 94,
            fallback_exit_pct: 25,
            gate_reclaim: true,
            reference_sweep: default_reference_sweep(),
            expedite_batch: default_expedite_batch(),
            pressure_sync: default_pressure_sync(),
        }
    }
}

impl LatrConfig {
    /// Paper-default configuration. (The watchdog and adaptive fallback
    /// are robustness extensions beyond the paper; their defaults are
    /// calibrated never to engage on healthy runs, so paper-figure
    /// reproductions are unaffected.)
    pub fn paper() -> Self {
        Self::default()
    }

    /// Paper mechanism only: watchdog and adaptive fallback disabled.
    /// Used by the chaos suite's negative tests to demonstrate that the
    /// bare mechanism stalls indefinitely under a stalled sweeper.
    pub fn without_degradation(mut self) -> Self {
        self.watchdog_ticks = 0;
        self.adaptive_fallback = false;
        self.gate_reclaim = false;
        self
    }

    /// Lazy mechanism without the memory-pressure escalation: expedition
    /// and the min-watermark sync fallback disabled, everything else
    /// default. The pressure bench's "bare lazy" arm — an allocation
    /// storm drives this configuration through its min watermark while
    /// the default configuration rides it out.
    pub fn without_escalation(mut self) -> Self {
        self.expedite_batch = 0;
        self.pressure_sync = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LatrConfig::default();
        assert_eq!(c.states_per_core, 64);
        assert_eq!(c.reclaim_ticks, 2);
        assert!(c.sweep_on_context_switch);
        assert!(c.lazy_migration);
        assert_eq!(LatrConfig::paper(), c);
    }

    #[test]
    fn degradation_defaults_are_calibrated() {
        let c = LatrConfig::default();
        // The watchdog must sit far above the healthy-path sweep bound so
        // it never fires without injected faults.
        assert!(c.watchdog_ticks > c.reclaim_ticks + 1);
        assert!(c.adaptive_fallback);
        assert!(c.fallback_enter_pct > c.fallback_exit_pct);
        assert!(c.gate_reclaim);
        let bare = c.without_degradation();
        assert_eq!(bare.watchdog_ticks, 0);
        assert!(!bare.adaptive_fallback);
        assert!(!bare.gate_reclaim);
    }

    #[test]
    fn escalation_defaults_and_bare_lazy() {
        let c = LatrConfig::default();
        assert_eq!(c.expedite_batch, 8);
        assert!(c.pressure_sync);
        let bare = c.without_escalation();
        assert_eq!(bare.expedite_batch, 0);
        assert!(!bare.pressure_sync);
        // Everything outside the escalation knobs is untouched.
        assert!(bare.gate_reclaim);
        assert_eq!(bare.watchdog_ticks, c.watchdog_ticks);
    }
}
