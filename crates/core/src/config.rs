//! Latr configuration knobs (§4.1, §8 and the ablation benches).

use serde::{Deserialize, Serialize};

/// Tunables of the Latr mechanism. Defaults match the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatrConfig {
    /// Latr states per core (§4.1: 64; §8 notes the trade-off between
    /// queue size and sweep cost — ablated in `bench --bin ablations`).
    pub states_per_core: usize,
    /// Scheduler ticks to wait before reclaiming virtual and physical
    /// pages (§4.2: two ticks = 2 ms).
    pub reclaim_ticks: u32,
    /// Whether to also sweep on context switches (§4.1: tick *or* context
    /// switch, whichever comes first). Turning this off is an ablation.
    pub sweep_on_context_switch: bool,
    /// Whether lazy handling of AutoNUMA hint-unmaps is enabled (§4.3).
    pub lazy_migration: bool,
}

impl Default for LatrConfig {
    fn default() -> Self {
        LatrConfig {
            states_per_core: 64,
            reclaim_ticks: 2,
            sweep_on_context_switch: true,
            lazy_migration: true,
        }
    }
}

impl LatrConfig {
    /// Paper-default configuration.
    pub fn paper() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LatrConfig::default();
        assert_eq!(c.states_per_core, 64);
        assert_eq!(c.reclaim_ticks, 2);
        assert!(c.sweep_on_context_switch);
        assert!(c.lazy_migration);
        assert_eq!(LatrConfig::paper(), c);
    }
}
