//! Latr states and the per-core cyclic state queue (§4.1).
//!
//! Each entry holds "the addresses start and end of the virtual address for
//! the TLB shootdown, a pointer to the `mm_struct`, a bitmask to identify
//! the remote CPUs involved, flags to identify the reason for the
//! shootdown, and an active flag". Each core owns a queue of 64 such
//! states; remote cores sweep all queues at their scheduler tick or context
//! switch, invalidate locally, and clear their bit — the last core clears
//! the active flag, recycling the slot.
//!
//! This module is the *simulation-side* representation; [`crate::rt`]
//! contains the lock-free concurrent twin.

use latr_arch::{CpuId, CpuMask};
use latr_mem::{MmId, VaRange};
use latr_sim::Time;
use serde::{Deserialize, Serialize};

/// Why a state was published — the paper's `flags` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateKind {
    /// A free operation (munmap / madvise): PTEs already cleared, frames
    /// parked on the lazy-reclaim list.
    Free,
    /// An AutoNUMA migration hint-unmap: the PTE is *not* cleared yet; the
    /// first sweeping core performs the unmap (§4.3).
    Migration,
}

/// One Latr state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatrState {
    /// Run-unique id assigned by the publisher. Reclamation packages gate
    /// on it (a gated package is not released while this state's mask is
    /// non-empty) and the sweep watchdog tracks escalations by it.
    pub id: u64,
    /// The virtual range to invalidate.
    pub range: VaRange,
    /// The address space it belongs to (the `mm` pointer).
    pub mm: MmId,
    /// Why the shootdown is needed.
    pub kind: StateKind,
    /// CPUs that still have to invalidate.
    pub cpus: CpuMask,
    /// For [`StateKind::Migration`]: whether the first sweeper has already
    /// cleared the PTE.
    pub pte_done: bool,
    /// When the state was published (for bounded-staleness checks).
    pub published: Time,
}

/// A per-core cyclic queue of Latr states with a fixed number of slots.
///
/// ```
/// use latr_core::{StateQueue, LatrState, StateKind};
/// use latr_arch::{CpuMask, CpuId};
/// use latr_mem::{VaRange, Vpn, MmId};
/// use latr_sim::Time;
///
/// let mut q = StateQueue::new(2);
/// let state = LatrState {
///     id: 0,
///     range: VaRange::new(Vpn(0x10), 1),
///     mm: MmId(0),
///     kind: StateKind::Free,
///     cpus: CpuMask::from_cpus([CpuId(1)]),
///     pte_done: true,
///     published: Time::ZERO,
/// };
/// assert!(q.publish(state.clone()).is_some());
/// assert!(q.publish(state.clone()).is_some());
/// assert!(q.publish(state).is_none()); // full -> caller falls back to IPIs
/// ```
#[derive(Clone, Debug, Default)]
pub struct StateQueue {
    slots: Vec<Option<LatrState>>,
    head: usize,
    /// Occupancy bitmap — bit `i` set iff `slots[i]` is active. Publish
    /// probes and active-slot iteration run on words instead of walking
    /// `Option`s.
    occ: Vec<u64>,
    active: usize,
    /// Active states with [`StateKind::Migration`] — lets the hint-fault
    /// gate answer "no migrations anywhere" without scanning slots.
    migrations: usize,
}

impl StateQueue {
    /// Creates a queue with `capacity` slots (64 in the paper).
    pub fn new(capacity: usize) -> Self {
        StateQueue {
            slots: vec![None; capacity],
            head: 0,
            occ: vec![0; capacity.div_ceil(64)],
            active: 0,
            migrations: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of active states.
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Number of active [`StateKind::Migration`] states.
    pub fn active_migrations(&self) -> usize {
        self.migrations
    }

    #[inline]
    fn mark_occupied(&mut self, idx: usize, kind: StateKind) {
        self.occ[idx / 64] |= 1 << (idx % 64);
        self.active += 1;
        if kind == StateKind::Migration {
            self.migrations += 1;
        }
    }

    #[inline]
    fn mark_free(&mut self, idx: usize, kind: StateKind) {
        self.occ[idx / 64] &= !(1 << (idx % 64));
        self.active -= 1;
        if kind == StateKind::Migration {
            self.migrations -= 1;
        }
    }

    /// Publishes a state into a free slot, cyclically from the head.
    /// Returns the slot index, or `None` when every slot is active — the
    /// caller must fall back to IPIs (§4.2).
    pub fn publish(&mut self, state: LatrState) -> Option<usize> {
        let n = self.slots.len();
        if self.active == n {
            return None;
        }
        // Word-scan for the first free slot at or after the head,
        // wrapping. Equivalent to the per-slot probe loop, minus the
        // Option walks.
        let mut idx = self.head;
        loop {
            let free = !self.occ[idx / 64] >> (idx % 64);
            if free & 1 != 0 {
                break;
            }
            // Skip to the next zero bit within this word, or to the next
            // word boundary when the rest of the word is occupied.
            let skip = if free == 0 {
                64 - idx % 64
            } else {
                free.trailing_zeros() as usize
            };
            idx += skip;
            if idx >= n {
                idx = 0;
            }
        }
        let kind = state.kind;
        self.slots[idx] = Some(state);
        self.mark_occupied(idx, kind);
        self.head = (idx + 1) % n;
        Some(idx)
    }

    /// Iterates over active states mutably (the sweep path).
    pub fn iter_active_mut(&mut self) -> impl Iterator<Item = &mut LatrState> {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// Visits every active state mutably, walking the occupancy bitmap
    /// instead of probing each slot's discriminant. A mostly-empty queue
    /// costs one word read per 64 slots rather than a cache line per
    /// slot — the shape a sweeping core sees on almost every tick.
    pub fn for_each_active_mut(&mut self, mut f: impl FnMut(&mut LatrState)) {
        for w in 0..self.occ.len() {
            let mut bits = self.occ[w];
            while bits != 0 {
                let idx = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(self.slots[idx]
                    .as_mut()
                    .expect("occupancy bit names an active slot"));
            }
        }
    }

    /// Iterates over active states.
    pub fn iter_active(&self) -> impl Iterator<Item = &LatrState> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Deactivates every state whose CPU mask has emptied (the "last core
    /// resets the active flag" step). Returns how many were retired.
    pub fn retire_completed(&mut self) -> usize {
        let mut retired = 0;
        for w in 0..self.occ.len() {
            let mut bits = self.occ[w];
            while bits != 0 {
                let idx = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let s = self.slots[idx]
                    .as_ref()
                    .expect("occupancy bit names an active slot");
                if s.cpus.is_empty() {
                    let kind = s.kind;
                    self.slots[idx] = None;
                    self.mark_free(idx, kind);
                    retired += 1;
                }
            }
        }
        retired
    }

    /// Clears `cpu`'s bit in every active state, without invalidating
    /// anything — used when a core goes away (task exit flushes its TLB).
    pub fn clear_cpu_everywhere(&mut self, cpu: CpuId) {
        for s in self.iter_active_mut() {
            s.cpus.clear(cpu);
        }
    }

    /// Removes every state (end of run).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.occ.fill(0);
        self.active = 0;
        self.migrations = 0;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latr_mem::Vpn;

    fn state(cpu_bits: &[u16]) -> LatrState {
        LatrState {
            id: 0,
            range: VaRange::new(Vpn(0x100), 2),
            mm: MmId(0),
            kind: StateKind::Free,
            cpus: cpu_bits.iter().map(|&c| CpuId(c)).collect(),
            pte_done: true,
            published: Time::ZERO,
        }
    }

    #[test]
    fn publish_fills_slots_cyclically() {
        let mut q = StateQueue::new(3);
        assert_eq!(q.publish(state(&[1])), Some(0));
        assert_eq!(q.publish(state(&[1])), Some(1));
        assert_eq!(q.publish(state(&[1])), Some(2));
        assert_eq!(q.active_count(), 3);
        assert!(q.publish(state(&[1])).is_none());
    }

    #[test]
    fn retire_frees_slots_for_reuse() {
        let mut q = StateQueue::new(2);
        q.publish(state(&[1]));
        q.publish(state(&[2]));
        // Core 1 sweeps: first state's mask empties.
        for s in q.iter_active_mut() {
            s.cpus.clear(CpuId(1));
        }
        assert_eq!(q.retire_completed(), 1);
        assert_eq!(q.active_count(), 1);
        assert!(q.publish(state(&[3])).is_some());
    }

    #[test]
    fn head_advances_past_published_slot() {
        let mut q = StateQueue::new(3);
        q.publish(state(&[1])); // slot 0
                                // Retire it.
        for s in q.iter_active_mut() {
            s.cpus.clear(CpuId(1));
        }
        q.retire_completed();
        // Next publish goes to slot 1 (head moved), not back to 0.
        assert_eq!(q.publish(state(&[1])), Some(1));
    }

    #[test]
    fn clear_cpu_everywhere_empties_masks() {
        let mut q = StateQueue::new(2);
        q.publish(state(&[1, 2]));
        q.publish(state(&[1]));
        q.clear_cpu_everywhere(CpuId(1));
        let remaining: Vec<usize> = q.iter_active().map(|s| s.cpus.count()).collect();
        assert_eq!(remaining, vec![1, 0]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut q = StateQueue::new(2);
        q.publish(state(&[1]));
        q.clear();
        assert_eq!(q.active_count(), 0);
        assert_eq!(q.publish(state(&[1])), Some(0));
    }

    #[test]
    fn zero_capacity_queue_always_overflows() {
        let mut q = StateQueue::new(0);
        assert!(q.publish(state(&[1])).is_none());
    }

    #[test]
    fn migration_counter_tracks_publish_retire_clear() {
        let mut q = StateQueue::new(4);
        let mut mig = state(&[1]);
        mig.kind = StateKind::Migration;
        q.publish(mig.clone());
        q.publish(state(&[2]));
        q.publish(mig);
        assert_eq!(q.active_migrations(), 2);
        q.clear_cpu_everywhere(CpuId(1));
        assert_eq!(q.retire_completed(), 2);
        assert_eq!(q.active_migrations(), 0);
        assert_eq!(q.active_count(), 1);
        q.clear();
        assert_eq!((q.active_count(), q.active_migrations()), (0, 0));
    }

    /// The word-scan publish must choose the same slot the original
    /// cyclic per-slot probe would: the first free slot at or after the
    /// head, wrapping. 100 slots spans a full occupancy word plus a
    /// partial tail word, exercising both the intra-word skip and the
    /// phantom-free bits past capacity.
    #[test]
    fn word_scan_publish_matches_linear_probe() {
        let mut q = StateQueue::new(100);
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut shadow: Vec<bool> = vec![false; 100];
        let mut head = 0usize;
        for _ in 0..4000 {
            if next() % 3 == 0 {
                // Retire a random occupied slot by emptying its mask.
                let victim = (next() % 100) as usize;
                if shadow[victim] {
                    q.slots[victim].as_mut().unwrap().cpus.reset();
                    assert_eq!(q.retire_completed(), 1);
                    shadow[victim] = false;
                }
            }
            let expected = (0..100)
                .map(|probe| (head + probe) % 100)
                .find(|&idx| !shadow[idx]);
            let got = q.publish(state(&[1]));
            assert_eq!(got, expected);
            if let Some(idx) = got {
                shadow[idx] = true;
                head = (idx + 1) % 100;
            }
            assert_eq!(q.active_count(), shadow.iter().filter(|&&b| b).count());
        }
    }
}
