//! Synthetic PARSEC profiles (§6.2.2 Fig. 10, §6.4 Fig. 12 and Table 4).
//!
//! Fig. 10's result is driven by each benchmark's *rates* — how often it
//! frees memory (`madvise`/`munmap` → shootdowns), how often it context
//! switches (→ Latr sweeps), and its cache behaviour — not by what it
//! computes. Each [`ParsecProfile`] captures those rates, calibrated
//! against the shootdown-per-second axis of Fig. 10 and the miss ratios of
//! Table 4. The workload then runs a *fixed amount of work*, so completion
//! time is directly comparable across policies (the "normalized runtime"
//! the paper plots).
//!
//! Per iteration each task: touches its working set, computes one grain,
//! and — per its profile — occasionally frees and remaps a scratch buffer
//! (the shootdown source) or yields (the context-switch source).

use latr_arch::CpuId;
use latr_kernel::{metrics, Machine, Op, OpResult, TaskId, Workload};
use latr_mem::VaRange;
use latr_sim::Nanos;

/// Rate profile of one PARSEC benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParsecProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Compute per iteration (ns).
    pub grain_ns: Nanos,
    /// Working-set accesses modelled per iteration.
    pub accesses_per_iter: u32,
    /// Working-set size in pages (per task).
    pub ws_pages: u64,
    /// Free a scratch buffer every this many iterations (0 = never).
    pub madvise_every: u64,
    /// Scratch buffer size in pages.
    pub scratch_pages: u64,
    /// Voluntary context switch every this many iterations (0 = never).
    pub yield_every: u64,
    /// Baseline LLC miss ratio (Table 4).
    pub llc_miss: f64,
}

impl ParsecProfile {
    /// The 13 benchmarks of Fig. 10, rates calibrated to its
    /// shootdowns-per-second axis (dedup ≈ 30 k/s, netdedup ≈ 22 k/s,
    /// vips ≈ 8 k/s, most others near zero) and Table 4's miss ratios.
    pub fn all() -> Vec<ParsecProfile> {
        vec![
            ParsecProfile {
                name: "blackscholes",
                grain_ns: 42_000,
                accesses_per_iter: 24,
                ws_pages: 1_024,
                madvise_every: 0,
                scratch_pages: 0,
                yield_every: 0,
                llc_miss: 0.06,
            },
            ParsecProfile {
                name: "bodytrack",
                grain_ns: 30_000,
                accesses_per_iter: 24,
                ws_pages: 2_048,
                madvise_every: 160,
                scratch_pages: 8,
                yield_every: 120,
                llc_miss: 0.08,
            },
            ParsecProfile {
                name: "canneal",
                grain_ns: 26_000,
                accesses_per_iter: 48,
                ws_pages: 16_384,
                madvise_every: 0,
                scratch_pages: 0,
                yield_every: 2,
                llc_miss: 0.805,
            },
            ParsecProfile {
                name: "dedup",
                grain_ns: 26_000,
                accesses_per_iter: 32,
                ws_pages: 768,
                madvise_every: 12,
                scratch_pages: 64,
                yield_every: 0,
                llc_miss: 0.183,
            },
            ParsecProfile {
                name: "facesim",
                grain_ns: 48_000,
                accesses_per_iter: 32,
                ws_pages: 4_096,
                madvise_every: 400,
                scratch_pages: 4,
                yield_every: 0,
                llc_miss: 0.12,
            },
            ParsecProfile {
                name: "ferret",
                grain_ns: 30_000,
                accesses_per_iter: 32,
                ws_pages: 4_096,
                madvise_every: 220,
                scratch_pages: 6,
                yield_every: 60,
                llc_miss: 0.48,
            },
            ParsecProfile {
                name: "fluidanimate",
                grain_ns: 38_000,
                accesses_per_iter: 32,
                ws_pages: 8_192,
                madvise_every: 300,
                scratch_pages: 4,
                yield_every: 0,
                llc_miss: 0.10,
            },
            ParsecProfile {
                name: "freqmine",
                grain_ns: 44_000,
                accesses_per_iter: 24,
                ws_pages: 4_096,
                madvise_every: 0,
                scratch_pages: 0,
                yield_every: 0,
                llc_miss: 0.09,
            },
            ParsecProfile {
                name: "netdedup",
                grain_ns: 28_000,
                accesses_per_iter: 32,
                ws_pages: 768,
                madvise_every: 22,
                scratch_pages: 64,
                yield_every: 0,
                llc_miss: 0.17,
            },
            ParsecProfile {
                name: "raytrace",
                grain_ns: 40_000,
                accesses_per_iter: 24,
                ws_pages: 2_048,
                madvise_every: 500,
                scratch_pages: 2,
                yield_every: 0,
                llc_miss: 0.07,
            },
            ParsecProfile {
                name: "streamcluster",
                grain_ns: 36_000,
                accesses_per_iter: 64,
                ws_pages: 8_192,
                madvise_every: 0,
                scratch_pages: 0,
                yield_every: 90,
                llc_miss: 0.954,
            },
            ParsecProfile {
                name: "swaptions",
                grain_ns: 32_000,
                accesses_per_iter: 24,
                ws_pages: 1_024,
                madvise_every: 600,
                scratch_pages: 2,
                yield_every: 0,
                llc_miss: 0.475,
            },
            ParsecProfile {
                name: "vips",
                grain_ns: 30_000,
                accesses_per_iter: 24,
                ws_pages: 2_048,
                madvise_every: 70,
                scratch_pages: 6,
                yield_every: 0,
                llc_miss: 0.14,
            },
        ]
    }

    /// A profile by name.
    pub fn by_name(name: &str) -> Option<ParsecProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// The Fig. 12 low-shootdown subset run at 16 cores.
    pub fn low_shootdown() -> Vec<ParsecProfile> {
        ["bodytrack", "canneal", "facesim", "ferret", "streamcluster"]
            .iter()
            .map(|n| Self::by_name(n).expect("known profile"))
            .collect()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Work,
    Grain,
    Free,
    Remap,
    Switch,
}

/// A fixed-work run of one [`ParsecProfile`] on `cores` cores.
#[derive(Debug)]
pub struct ParsecWorkload {
    profile: ParsecProfile,
    cores: usize,
    iters_per_task: u64,
    done: Vec<u64>,
    phase: Vec<Phase>,
    ws: Vec<Option<VaRange>>,
    scratch: Vec<Option<VaRange>>,
}

impl ParsecWorkload {
    /// Runs `profile` for `iters_per_task` iterations on each of `cores`
    /// cores (all threads of one process, as PARSEC's pthreads are).
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `iters_per_task` is zero.
    pub fn new(profile: ParsecProfile, cores: usize, iters_per_task: u64) -> Self {
        assert!(cores > 0 && iters_per_task > 0);
        ParsecWorkload {
            profile,
            cores,
            iters_per_task,
            done: vec![0; cores],
            phase: vec![Phase::Work; cores],
            ws: vec![None; cores],
            scratch: vec![None; cores],
        }
    }

    /// The profile being run.
    pub fn profile(&self) -> &ParsecProfile {
        &self.profile
    }

    fn needs(&self, i: usize, every: u64) -> bool {
        every != 0 && self.done[i] > 0 && self.done[i].is_multiple_of(every)
    }
}

impl Workload for ParsecWorkload {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        for c in 0..self.cores {
            machine.spawn_task(mm, CpuId(c as u16));
        }
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        let i = task.index();
        if self.done[i] >= self.iters_per_task {
            return Op::Exit;
        }
        // Lazily allocate the per-task working set and scratch buffer.
        if self.ws[i].is_none() {
            return Op::MmapAnon {
                pages: self.profile.ws_pages,
            };
        }
        if self.profile.scratch_pages > 0 && self.scratch[i].is_none() {
            return Op::MmapAnon {
                pages: self.profile.scratch_pages,
            };
        }
        match self.phase[i] {
            Phase::Work => {
                // Working-set touches, then the compute grain; completion
                // of the grain advances the iteration count.
                let ws = self.ws[i].expect("working set mapped");
                self.phase[i] = Phase::Grain;
                let _ = machine;
                Op::AccessBatch {
                    range: ws,
                    accesses: self.profile.accesses_per_iter,
                    write: true,
                }
            }
            Phase::Grain => {
                self.phase[i] = if self.needs(i, self.profile.madvise_every) {
                    Phase::Free
                } else if self.needs(i, self.profile.yield_every) {
                    Phase::Switch
                } else {
                    Phase::Work
                };
                Op::Compute(self.profile.grain_ns)
            }
            Phase::Free => {
                self.phase[i] = Phase::Remap;
                Op::MadviseFree {
                    range: self.scratch[i].expect("scratch mapped"),
                }
            }
            Phase::Remap => {
                // Touch the scratch again so the next free has mapped pages
                // (MADV_FREE leaves the VMA in place; refaulting repopulates).
                self.phase[i] = if self.needs(i, self.profile.yield_every) {
                    Phase::Switch
                } else {
                    Phase::Work
                };
                let scratch = self.scratch[i].expect("scratch mapped");
                Op::AccessBatch {
                    range: scratch,
                    accesses: self.profile.scratch_pages as u32,
                    write: true,
                }
            }
            Phase::Switch => {
                self.phase[i] = Phase::Work;
                Op::Yield
            }
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        let i = task.index();
        match result.op {
            Op::MmapAnon { pages } => {
                let range = machine.task(task).last_mmap;
                if pages == self.profile.ws_pages && self.ws[i].is_none() {
                    self.ws[i] = range;
                } else {
                    self.scratch[i] = range;
                }
            }
            Op::Compute(_) => {
                // The grain's completion ends the iteration.
                self.done[i] += 1;
                machine.stats.inc(metrics::WORK_UNITS);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{config_for, run_experiment, PolicyKind};
    use latr_arch::{MachinePreset, Topology};
    use latr_sim::SECOND;

    fn run_profile(name: &str, policy: PolicyKind, iters: u64) -> (f64, crate::ExperimentResult) {
        let profile = ParsecProfile::by_name(name).unwrap();
        let (res, machine) = run_experiment(
            config_for(Topology::preset(MachinePreset::Commodity2S16C)),
            policy,
            Box::new(ParsecWorkload::new(profile, 16, iters)),
            30 * SECOND,
        );
        assert_eq!(machine.check_reclamation_invariant(), None);
        (res.duration_ns as f64, res)
    }

    #[test]
    fn all_profiles_present() {
        assert_eq!(ParsecProfile::all().len(), 13);
        assert!(ParsecProfile::by_name("dedup").is_some());
        assert!(ParsecProfile::by_name("nope").is_none());
        assert_eq!(ParsecProfile::low_shootdown().len(), 5);
    }

    #[test]
    fn fixed_work_completes() {
        let (_, res) = run_profile("blackscholes", PolicyKind::Linux, 50);
        assert_eq!(res.work_units, 16 * 50);
    }

    #[test]
    fn fig10_dedup_improves_under_latr() {
        let (t_linux, linux) = run_profile("dedup", PolicyKind::Linux, 1_500);
        let (t_latr, _) = run_profile("dedup", PolicyKind::latr_default(), 1_500);
        let normalized = t_latr / t_linux;
        assert!(
            normalized < 0.975,
            "dedup normalized runtime {normalized:.3}, paper reports 0.904"
        );
        assert!(
            linux.shootdowns_per_sec > 10_000.0,
            "dedup must be shootdown-heavy, got {:.0}/s",
            linux.shootdowns_per_sec
        );
    }

    #[test]
    fn fig10_canneal_pays_small_sweep_overhead() {
        let (t_linux, _) = run_profile("canneal", PolicyKind::Linux, 300);
        let (t_latr, _) = run_profile("canneal", PolicyKind::latr_default(), 300);
        let normalized = t_latr / t_linux;
        assert!(
            (1.0..1.06).contains(&normalized),
            "canneal normalized runtime {normalized:.3}, paper reports ≈1.017"
        );
    }

    #[test]
    fn fig10_quiet_benchmarks_are_unchanged() {
        let (t_linux, _) = run_profile("blackscholes", PolicyKind::Linux, 200);
        let (t_latr, _) = run_profile("blackscholes", PolicyKind::latr_default(), 200);
        let normalized = t_latr / t_linux;
        assert!(
            (0.97..1.03).contains(&normalized),
            "blackscholes normalized runtime {normalized:.3} should be ≈1"
        );
    }
}
