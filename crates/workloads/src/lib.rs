//! # latr-workloads — workload generators for the Latr evaluation
//!
//! Deterministic [`latr_kernel::Workload`] implementations reproducing the
//! paper's §6 experiment drivers:
//!
//! * [`MunmapMicrobench`] — the Fig. 6/7/8 microbenchmark: a set of pages
//!   shared by N cores, then `munmap()`ed by one of them;
//! * [`ApacheWorkload`] — the Fig. 1/9 web-server model: per request,
//!   `mmap()` a page-cache file, touch it, `munmap()` it;
//! * [`ParsecWorkload`] + [`ParsecProfile`] — the Fig. 10/12 and Table 4
//!   PARSEC suite as calibrated synthetic profiles;
//! * [`MigrationWorkload`] + [`MigrationProfile`] — the Fig. 11 AutoNUMA
//!   applications (graph500, pbzip2, metis, fluidanimate, ocean_cp);
//! * [`SweepStorm`] — the sweep-heavy workload the hot-path benchmarks
//!   and the fast-vs-reference differential suite run on;
//! * [`ServingWorkload`] — the open-loop tail-latency workload behind
//!   `BENCH_serving.json`: Poisson/bursty arrivals across many mms, one
//!   mmap/touch/munmap cycle per request;
//! * [`ChaosShare`] — the cross-core sharing workload the chaos and
//!   differential suites drive under injected fault plans;
//! * [`AllocStorm`] — the allocation-storm workload the memory-pressure
//!   suite and the `pressure` bench drive through the watermarks;
//! * [`harness`] — one-call experiment runner shared by the bench
//!   binaries, the examples and the integration tests.

pub mod apache;
pub mod chaos_share;
pub mod harness;
pub mod microbench;
pub mod migration;
pub mod parsec;
pub mod serving;
pub mod storm;
pub mod sweep_storm;

pub use apache::ApacheWorkload;
pub use chaos_share::ChaosShare;
pub use harness::{run_experiment, ExperimentResult, PolicyKind};
pub use microbench::MunmapMicrobench;
pub use migration::{MigrationProfile, MigrationWorkload};
pub use parsec::{ParsecProfile, ParsecWorkload};
pub use serving::{ArrivalProcess, ServingWorkload};
pub use storm::AllocStorm;
pub use sweep_storm::SweepStorm;
