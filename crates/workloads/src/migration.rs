//! AutoNUMA migration workloads (§6.3, Fig. 11).
//!
//! Five applications that benefit from NUMA balancing: fluidanimate and
//! ocean_cp (from PARSEC/SPLASH-2x), Graph500 (BFS on a size-20 problem),
//! PBZIP2 (parallel compression) and Metis (single-machine map-reduce).
//!
//! The driving pattern: a large shared region is first-touched on one node,
//! then accessed from cores of both sockets with a periodically *rotating*
//! slice assignment, so pages keep being sampled by the AutoNUMA scanner
//! and migrated toward their current accessors — Graph500's irregular
//! frontier produces the highest migration rate (≈12 k/s in Fig. 11),
//! PBZIP2 the lowest.
//!
//! What differs between policies is the scanner's hint-unmap: a synchronous
//! shootdown per sampled page in Linux versus a Latr state (§4.3).

use latr_arch::{CpuId, Topology};
use latr_kernel::{metrics, Machine, MachineConfig, NumaConfig, Op, OpResult, TaskId, Workload};
use latr_mem::VaRange;
use latr_sim::{Nanos, MILLISECOND};

/// Rate profile of one Fig. 11 application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MigrationProfile {
    /// Application name.
    pub name: &'static str,
    /// Compute per iteration (ns).
    pub grain_ns: Nanos,
    /// Accesses per iteration into the task's current slice.
    pub accesses_per_iter: u32,
    /// Shared region size in pages.
    pub region_pages: u64,
    /// Iterations between slice rotations (0 = static placement; lower =
    /// more cross-node churn).
    pub rotate_every: u64,
    /// AutoNUMA pages hinted per scan visit.
    pub pages_per_scan: usize,
    /// AutoNUMA scan period.
    pub scan_period: Nanos,
}

impl MigrationProfile {
    /// The five Fig. 11 applications, churn rates ordered to reproduce the
    /// figure's migrations-per-second ordering
    /// (graph500 > metis > ocean_cp > fluidanimate > pbzip2).
    pub fn all() -> Vec<MigrationProfile> {
        // Page re-access periods are kept long (tens of ms) relative to
        // the 1 ms sweep cycle so Latr's blocked-fault window (§4.4) is
        // rarely hit — matching the regime in which the paper's lazy
        // migration wins.
        vec![
            MigrationProfile {
                name: "fluidanimate",
                grain_ns: 170_000,
                accesses_per_iter: 1,
                region_pages: 3_072,
                rotate_every: 0,
                pages_per_scan: 24,
                scan_period: 4 * MILLISECOND,
            },
            MigrationProfile {
                name: "ocean_cp",
                grain_ns: 160_000,
                accesses_per_iter: 1,
                region_pages: 3_072,
                rotate_every: 0,
                pages_per_scan: 32,
                scan_period: 3 * MILLISECOND,
            },
            MigrationProfile {
                name: "graph500",
                grain_ns: 150_000,
                accesses_per_iter: 1,
                region_pages: 4_096,
                rotate_every: 0,
                pages_per_scan: 48,
                scan_period: 2 * MILLISECOND,
            },
            MigrationProfile {
                name: "pbzip2",
                grain_ns: 200_000,
                accesses_per_iter: 1,
                region_pages: 2_048,
                rotate_every: 0,
                pages_per_scan: 8,
                scan_period: 6 * MILLISECOND,
            },
            MigrationProfile {
                name: "metis",
                grain_ns: 150_000,
                accesses_per_iter: 1,
                region_pages: 4_096,
                rotate_every: 0,
                pages_per_scan: 40,
                scan_period: 2 * MILLISECOND,
            },
        ]
    }

    /// A profile by name.
    pub fn by_name(name: &str) -> Option<MigrationProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// The machine configuration this profile needs: NUMA balancing
    /// enabled with the profile's scan parameters.
    pub fn machine_config(&self, topology: Topology) -> MachineConfig {
        let mut config = MachineConfig::new(topology);
        config.numa = NumaConfig {
            enabled: true,
            scan_period: self.scan_period,
            pages_per_scan: self.pages_per_scan,
            fault_retry: MILLISECOND / 10,
        };
        config
    }
}

/// A fixed-work run of one [`MigrationProfile`].
#[derive(Debug)]
pub struct MigrationWorkload {
    profile: MigrationProfile,
    cores: usize,
    iters_per_task: u64,
    done: Vec<u64>,
    in_grain: Vec<bool>,
    region: Option<VaRange>,
    populated: u64,
}

impl MigrationWorkload {
    /// Runs `profile` on `cores` cores for `iters_per_task` iterations
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `iters_per_task` is zero.
    pub fn new(profile: MigrationProfile, cores: usize, iters_per_task: u64) -> Self {
        assert!(cores > 0 && iters_per_task > 0);
        MigrationWorkload {
            profile,
            cores,
            iters_per_task,
            done: vec![0; cores],
            in_grain: vec![false; cores],
            region: None,
            populated: 0,
        }
    }

    /// The slice of the region `task` works on during its current epoch.
    /// With rotation enabled, slices rotate by one position per epoch, so
    /// every task keeps adopting pages last touched from the other socket.
    fn slice(&self, task: usize, epoch: u64) -> VaRange {
        let region = self.region.expect("region mapped");
        let n = self.cores as u64;
        let slice_pages = (region.pages / n).max(1);
        let idx = (task as u64 + epoch) % n;
        VaRange::new(
            region.start.offset(idx * slice_pages),
            slice_pages.min(region.pages - idx * slice_pages),
        )
    }
}

impl Workload for MigrationWorkload {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        for c in 0..self.cores {
            machine.spawn_task(mm, CpuId(c as u16));
        }
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        let i = task.index();
        if self.done[i] >= self.iters_per_task {
            return Op::Exit;
        }
        let Some(region) = self.region else {
            return if i == 0 {
                Op::MmapAnon {
                    pages: self.profile.region_pages,
                }
            } else {
                Op::Sleep(5_000)
            };
        };
        // Task 0 first-touches the whole region so every page starts on
        // node 0 — the imbalance AutoNUMA then corrects.
        if self.populated < region.pages {
            if i == 0 {
                let batch = 256.min(region.pages - self.populated);
                let r = VaRange::new(region.start.offset(self.populated), batch);
                self.populated += batch;
                return Op::AccessBatch {
                    range: r,
                    accesses: batch as u32,
                    write: true,
                };
            }
            return Op::Sleep(20_000);
        }
        if self.in_grain[i] {
            self.in_grain[i] = false;
            return Op::Compute(self.profile.grain_ns);
        }
        let epoch = self.done[i]
            .checked_div(self.profile.rotate_every)
            .unwrap_or(0);
        let slice = self.slice(i, epoch);
        self.in_grain[i] = true;
        let _ = machine;
        Op::AccessBatch {
            range: slice,
            accesses: self.profile.accesses_per_iter,
            write: true,
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        let i = task.index();
        match result.op {
            Op::MmapAnon { .. } => {
                self.region = machine.task(task).last_mmap;
            }
            Op::Compute(_) => {
                self.done[i] += 1;
                machine.stats.inc(metrics::WORK_UNITS);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_experiment, PolicyKind};
    use latr_arch::MachinePreset;
    use latr_sim::SECOND;

    fn run(name: &str, policy: PolicyKind, iters: u64) -> (f64, crate::ExperimentResult) {
        let profile = MigrationProfile::by_name(name).unwrap();
        let config = profile.machine_config(Topology::preset(MachinePreset::Commodity2S16C));
        let (res, machine) = run_experiment(
            config,
            policy,
            Box::new(MigrationWorkload::new(profile, 16, iters)),
            30 * SECOND,
        );
        assert_eq!(machine.check_reclamation_invariant(), None);
        (res.duration_ns as f64, res)
    }

    #[test]
    fn profiles_present() {
        assert_eq!(MigrationProfile::all().len(), 5);
        assert!(MigrationProfile::by_name("graph500").is_some());
        assert!(MigrationProfile::by_name("quake").is_none());
    }

    #[test]
    fn autonuma_migrates_pages() {
        let (_, res) = run("graph500", PolicyKind::Linux, 2_500);
        assert!(
            res.migrations_per_sec > 300.0,
            "expected an active migration stream, got {:.0}/s",
            res.migrations_per_sec
        );
    }

    #[test]
    fn fig11_graph500_improves_under_latr() {
        let (t_linux, linux) = run("graph500", PolicyKind::Linux, 2_500);
        let (t_latr, latr) = run("graph500", PolicyKind::latr_default(), 2_500);
        let normalized = t_latr / t_linux;
        assert!(
            normalized < 0.998,
            "graph500 normalized runtime {normalized:.3}, paper reports 0.943"
        );
        // Migration stream must stay comparable — Latr removes the scan
        // shootdown, not the migrations.
        assert!(
            latr.migrations_per_sec > linux.migrations_per_sec * 0.4,
            "latr {:.0}/s vs linux {:.0}/s",
            latr.migrations_per_sec,
            linux.migrations_per_sec
        );
    }

    #[test]
    fn fig11_low_churn_pbzip2_changes_little() {
        let (t_linux, _) = run("pbzip2", PolicyKind::Linux, 1_000);
        let (t_latr, _) = run("pbzip2", PolicyKind::latr_default(), 1_000);
        let normalized = t_latr / t_linux;
        assert!(
            (0.95..1.03).contains(&normalized),
            "pbzip2 normalized runtime {normalized:.3} should be ≈1"
        );
    }
}
