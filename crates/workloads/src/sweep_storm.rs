//! The sweep-heavy workload behind the hot-path benchmarks (ISSUE 4).
//!
//! Every core runs an independent map→touch→unmap→sleep loop against one
//! shared address space, so each `munmap` publishes a Latr state naming
//! every other core and each scheduler tick sweeps a mix of hit and
//! empty queues. The per-round sleep spreads the rounds across many
//! ticks: with `cores` cores the reference sweep performs
//! O(cores²·slots) slot probes per tick interval, which is exactly the
//! simulator overhead the pending-bitmap fast path removes — making this
//! the workload `BENCH_hotpath.json`'s ticks/sec comparison runs at 16,
//! 64 and 120 cores.

use latr_arch::CpuId;
use latr_kernel::{metrics, Machine, Op, OpResult, TaskId, Workload};
use latr_sim::{Nanos, MILLISECOND};

/// The sweep-storm workload: per-core map/touch/unmap/sleep rounds
/// against one shared mm.
#[derive(Debug)]
pub struct SweepStorm {
    cores: usize,
    publishers: usize,
    rounds: u32,
    sleep: Nanos,
    progress: Vec<u32>,
    phase: Vec<u8>,
    linger: Vec<u32>,
}

impl SweepStorm {
    /// A storm over `cores` cores, each performing `rounds`
    /// map/touch/unmap rounds with a one-tick sleep between rounds.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, rounds: u32) -> Self {
        assert!(cores > 0, "need at least one core");
        SweepStorm {
            cores,
            publishers: cores,
            rounds,
            // One scheduler tick: each round's state is swept (and the
            // queues drained) before the next publish, keeping the run
            // sweep-dominated rather than overflow-dominated.
            sleep: MILLISECOND,
            progress: vec![0; cores],
            phase: vec![0; cores],
            // A few ticks of linger after the last round lets the lazy
            // reclamation finish before the tasks exit.
            linger: vec![4; cores],
        }
    }

    /// Overrides the inter-round sleep (ns). Shorter sleeps raise publish
    /// pressure; zero degenerates into the overflow-fallback stress.
    pub fn with_sleep(mut self, sleep: Nanos) -> Self {
        self.sleep = sleep;
        self
    }

    /// Restricts publishing to the first `publishers` cores; the rest
    /// sleep through the run, ticking and sweeping but never mapping.
    /// This is the shape where laziness pays: with few publishers and
    /// many sweepers, most per-tick queue visits find nothing, which the
    /// pending bitmap skips and the reference scan pays for — the
    /// asymmetry `BENCH_hotpath.json`'s 120-core point measures.
    ///
    /// # Panics
    ///
    /// Panics if `publishers` is zero or exceeds the core count.
    pub fn with_publishers(mut self, publishers: usize) -> Self {
        assert!(
            publishers > 0 && publishers <= self.cores,
            "publishers must be in 1..=cores"
        );
        self.publishers = publishers;
        self
    }
}

impl Workload for SweepStorm {
    fn name(&self) -> &str {
        "sweep-storm"
    }

    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        for c in 0..self.cores {
            machine.spawn_task(mm, CpuId(c as u16));
        }
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        let i = task.index();
        if i >= self.publishers {
            // A pure sweeper: sleeps tick to tick until every publisher
            // has finished its rounds, then lingers like one so lazy
            // reclamation drains while the machine is still live.
            let done = self.progress[..self.publishers]
                .iter()
                .all(|&p| p >= self.rounds);
            if !done {
                return Op::Sleep(self.sleep.max(MILLISECOND));
            }
        }
        if i >= self.publishers || self.progress[i] >= self.rounds {
            if self.linger[i] > 0 {
                self.linger[i] -= 1;
                return Op::Sleep(self.sleep.max(MILLISECOND));
            }
            return Op::Exit;
        }
        match self.phase[i] {
            0 => {
                self.phase[i] = 1;
                Op::MmapAnon { pages: 1 }
            }
            1 => {
                self.phase[i] = 2;
                let r = machine.task(task).last_mmap.unwrap();
                Op::Access {
                    vpn: r.start,
                    write: true,
                }
            }
            2 => {
                self.phase[i] = 3;
                let r = machine.task(task).last_mmap.unwrap();
                Op::Munmap { range: r }
            }
            _ => {
                self.phase[i] = 0;
                self.progress[i] += 1;
                Op::Sleep(self.sleep.max(1))
            }
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, _task: TaskId, result: OpResult) {
        if matches!(result.op, Op::Munmap { .. }) {
            machine.stats.inc(metrics::WORK_UNITS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{config_for, run_experiment, PolicyKind};
    use latr_arch::{MachinePreset, Topology};
    use latr_sim::SECOND;

    #[test]
    fn completes_every_round_on_every_core() {
        let (res, machine) = run_experiment(
            config_for(Topology::preset(MachinePreset::Commodity2S16C)),
            PolicyKind::latr_default(),
            Box::new(SweepStorm::new(8, 5)),
            SECOND,
        );
        assert_eq!(res.work_units, 8 * 5);
        assert_eq!(machine.check_reclamation_invariant(), None);
        assert_eq!(machine.check_mapping_coherence(), None);
    }

    #[test]
    fn storm_is_sweep_dominated_not_overflow_dominated() {
        let (_, machine) = run_experiment(
            config_for(Topology::preset(MachinePreset::Commodity2S16C)),
            PolicyKind::latr_default(),
            Box::new(SweepStorm::new(16, 10)),
            SECOND,
        );
        assert!(
            machine.stats.counter(metrics::LATR_SWEEP_HITS) > 0,
            "states must be picked up by sweeps"
        );
        assert_eq!(
            machine.stats.counter(metrics::LATR_FALLBACK_IPIS),
            0,
            "one publish per tick per core must not overflow 64 slots"
        );
    }

    #[test]
    fn sparse_publishers_complete_while_sweepers_sleep() {
        let (res, machine) = run_experiment(
            config_for(Topology::preset(MachinePreset::Commodity2S16C)),
            PolicyKind::latr_default(),
            Box::new(SweepStorm::new(16, 6).with_publishers(4)),
            SECOND,
        );
        // Only the four publisher cores produce work units.
        assert_eq!(res.work_units, 4 * 6);
        assert!(machine.stats.counter(metrics::LATR_SWEEP_HITS) > 0);
        assert_eq!(machine.check_reclamation_invariant(), None);
        assert_eq!(machine.check_mapping_coherence(), None);
        assert_eq!(machine.frames.allocated_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = SweepStorm::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "publishers must be in 1..=cores")]
    fn too_many_publishers_panics() {
        let _ = SweepStorm::new(4, 1).with_publishers(5);
    }
}
