//! The munmap microbenchmark (§6.2.1, Figs. 6, 7 and 8).
//!
//! "We devise a microbenchmark that shares a set of pages between a
//! specified number of cores. A subsequent call to `munmap()` on this set
//! of pages will then force a TLB shootdown on the participating cores."
//!
//! Task 0 maps the pages; every participating core (including task 0)
//! touches all of them so its TLB genuinely caches the translations; task
//! 0 then unmaps. The machine's `munmap_ns` / `shootdown_ns` histograms
//! are the measurements the figures plot.

use latr_arch::CpuId;
use latr_kernel::{metrics, Machine, Op, OpResult, TaskId, Workload};
use latr_mem::VaRange;
use latr_sim::Nanos;

const POLL: Nanos = 2_000;

/// The Fig. 6/7/8 microbenchmark workload.
#[derive(Debug)]
pub struct MunmapMicrobench {
    sharers: usize,
    pages: u64,
    iterations: u64,
    gap: Nanos,
    round: u64,
    mapped: Option<VaRange>,
    unmap_issued: bool,
    gap_pending: bool,
    touch_progress: Vec<u64>,
    touched_round: Vec<u64>,
}

impl MunmapMicrobench {
    /// A benchmark sharing `pages` pages across `sharers` cores for
    /// `iterations` map/touch/unmap rounds.
    ///
    /// # Panics
    ///
    /// Panics if `sharers` or `pages` is zero.
    pub fn new(sharers: usize, pages: u64, iterations: u64) -> Self {
        assert!(
            sharers > 0 && pages > 0,
            "need at least one sharer and page"
        );
        MunmapMicrobench {
            sharers,
            pages,
            iterations,
            // Inter-iteration setup time of the measurement harness; also
            // keeps the publish rate below 64 states per scheduler tick so
            // the lazy path (not the IPI fallback) is what gets measured.
            gap: 18_000,
            round: 0,
            mapped: None,
            unmap_issued: false,
            gap_pending: false,
            touch_progress: vec![0; sharers],
            touched_round: vec![0; sharers],
        }
    }

    /// Overrides the inter-iteration gap (ns). A zero gap turns the
    /// benchmark into a publish-rate stress test that exercises Latr's
    /// fallback-IPI path.
    pub fn with_gap(mut self, gap: Nanos) -> Self {
        self.gap = gap;
        self
    }

    fn all_touched(&self) -> bool {
        self.touched_round
            .iter()
            .enumerate()
            .all(|(i, &r)| r > self.round || self.touch_progress[i] >= self.pages)
    }
}

impl Workload for MunmapMicrobench {
    fn name(&self) -> &str {
        "munmap-microbench"
    }

    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        for c in 0..self.sharers {
            machine.spawn_task(mm, CpuId(c as u16));
        }
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        if self.round >= self.iterations {
            return Op::Exit;
        }
        let i = task.index();
        let Some(range) = self.mapped else {
            return if i == 0 {
                if self.gap_pending {
                    self.gap_pending = false;
                    return Op::Sleep(self.gap.max(1));
                }
                Op::MmapAnon { pages: self.pages }
            } else {
                Op::Sleep(POLL)
            };
        };
        // A mapping exists for the current round.
        if self.touched_round[i] <= self.round && self.touch_progress[i] < self.pages {
            let vpn = range.start.offset(self.touch_progress[i]);
            return Op::Access { vpn, write: true };
        }
        if i == 0 {
            if self.all_touched() && !self.unmap_issued {
                self.unmap_issued = true;
                return Op::Munmap { range };
            }
            return Op::Sleep(POLL);
        }
        let _ = machine;
        Op::Sleep(POLL)
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        let i = task.index();
        match result.op {
            Op::MmapAnon { .. } => {
                self.mapped = machine.task(task).last_mmap;
                for p in &mut self.touch_progress {
                    *p = 0;
                }
            }
            Op::Access { .. } => {
                self.touch_progress[i] += 1;
                if self.touch_progress[i] >= self.pages {
                    self.touched_round[i] = self.round + 1;
                }
            }
            Op::Munmap { .. } => {
                machine.stats.inc(metrics::WORK_UNITS);
                self.round += 1;
                self.mapped = None;
                self.unmap_issued = false;
                self.gap_pending = true;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{config_for, run_experiment, PolicyKind};
    use latr_arch::{MachinePreset, Topology};
    use latr_sim::{MICROSECOND, SECOND};

    fn run(policy: PolicyKind, sharers: usize, pages: u64, iters: u64) -> crate::ExperimentResult {
        let (res, machine) = run_experiment(
            config_for(Topology::preset(MachinePreset::Commodity2S16C)),
            policy,
            Box::new(MunmapMicrobench::new(sharers, pages, iters)),
            10 * SECOND,
        );
        assert_eq!(machine.check_reclamation_invariant(), None);
        res
    }

    #[test]
    fn completes_every_iteration() {
        let res = run(PolicyKind::Linux, 4, 2, 20);
        assert_eq!(res.work_units, 20);
        assert_eq!(res.munmap_ns.unwrap().count, 20);
    }

    #[test]
    fn fig6_anchor_linux_16_cores_about_8us() {
        let res = run(PolicyKind::Linux, 16, 1, 150);
        let mean = res.munmap_ns.unwrap().mean;
        assert!(
            (6.0 * MICROSECOND as f64..10.5 * MICROSECOND as f64).contains(&mean),
            "Linux 16-core munmap {mean:.0}ns, expected ≈ 8 µs"
        );
        // Shootdown is the dominant share (paper: up to 71.6%).
        let wait = res.shootdown_wait_ns.unwrap().mean;
        assert!(
            wait / mean > 0.5,
            "shootdown share {:.2} too small",
            wait / mean
        );
    }

    #[test]
    fn fig6_anchor_latr_16_cores_about_2p4us() {
        let res = run(PolicyKind::latr_default(), 16, 1, 150);
        let mean = res.munmap_ns.unwrap().mean;
        assert!(
            (1.2 * MICROSECOND as f64..3.6 * MICROSECOND as f64).contains(&mean),
            "Latr 16-core munmap {mean:.0}ns, expected ≈ 2.4 µs"
        );
        assert_eq!(res.ipis_sent, 0, "no fallbacks expected at this rate");
    }

    #[test]
    fn fig6_latr_improvement_is_about_70_percent() {
        let linux = run(PolicyKind::Linux, 16, 1, 150);
        let latr = run(PolicyKind::latr_default(), 16, 1, 150);
        let improvement = 1.0 - latr.munmap_ns.unwrap().mean / linux.munmap_ns.unwrap().mean;
        assert!(
            (0.55..0.85).contains(&improvement),
            "improvement {improvement:.2}, paper reports 70.8%"
        );
    }

    #[test]
    fn fig8_shootdown_impact_shrinks_with_page_count() {
        let linux_small = run(PolicyKind::Linux, 16, 1, 60);
        let latr_small = run(PolicyKind::latr_default(), 16, 1, 60);
        let linux_big = run(PolicyKind::Linux, 16, 256, 30);
        let latr_big = run(PolicyKind::latr_default(), 16, 256, 30);
        let gain_small =
            1.0 - latr_small.munmap_ns.unwrap().mean / linux_small.munmap_ns.unwrap().mean;
        let gain_big = 1.0 - latr_big.munmap_ns.unwrap().mean / linux_big.munmap_ns.unwrap().mean;
        assert!(
            gain_big < gain_small,
            "benefit must shrink with pages: {gain_small:.2} -> {gain_big:.2}"
        );
        assert!(gain_big > 0.0, "Latr should still win at 256 pages");
    }

    #[test]
    fn fig7_large_numa_machine_anchors() {
        let (linux, _) = run_experiment(
            config_for(Topology::preset(MachinePreset::LargeNuma8S120C)),
            PolicyKind::Linux,
            Box::new(MunmapMicrobench::new(120, 1, 40)),
            10 * SECOND,
        );
        let mean = linux.munmap_ns.unwrap().mean;
        assert!(
            mean > 100.0 * MICROSECOND as f64,
            "Linux 120-core munmap {mean:.0}ns, paper reports >120 µs"
        );
        let (latr, _) = run_experiment(
            config_for(Topology::preset(MachinePreset::LargeNuma8S120C)),
            PolicyKind::latr_default(),
            Box::new(MunmapMicrobench::new(120, 1, 40)),
            10 * SECOND,
        );
        let latr_mean = latr.munmap_ns.unwrap().mean;
        assert!(
            latr_mean < 45.0 * MICROSECOND as f64,
            "Latr 120-core munmap {latr_mean:.0}ns, paper reports <40 µs"
        );
        let improvement = 1.0 - latr_mean / mean;
        assert!(
            improvement > 0.55,
            "improvement {improvement:.2}, paper reports 66.7%"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sharer")]
    fn zero_sharers_panics() {
        let _ = MunmapMicrobench::new(0, 1, 1);
    }
}
