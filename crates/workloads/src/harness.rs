//! One-call experiment runner shared by benches, examples and tests.

use latr_arch::Topology;
use latr_core::{LatrConfig, LatrPolicy};
use latr_kernel::{metrics, AbisPolicy, LinuxPolicy, Machine, MachineConfig, TlbPolicy, Workload};
use latr_sim::{Nanos, Summary};

/// Which TLB-coherence policy to run an experiment under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Stock Linux 4.10 synchronous IPI shootdowns.
    Linux,
    /// ABIS access-bit tracking (Amit, ATC'17).
    Abis,
    /// Latr with the given configuration.
    Latr(LatrConfig),
}

impl PolicyKind {
    /// Latr with the paper-default configuration.
    pub fn latr_default() -> Self {
        PolicyKind::Latr(LatrConfig::default())
    }

    /// Instantiates the policy object.
    pub fn build(self) -> Box<dyn TlbPolicy> {
        match self {
            PolicyKind::Linux => Box::new(LinuxPolicy::new()),
            PolicyKind::Abis => Box::new(AbisPolicy::new()),
            PolicyKind::Latr(cfg) => Box::new(LatrPolicy::new(cfg)),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Linux => "linux",
            PolicyKind::Abis => "abis",
            PolicyKind::Latr(_) => "latr",
        }
    }
}

/// The distilled result of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Which policy ran.
    pub policy: &'static str,
    /// Simulated wall-clock the run covered (ns).
    pub duration_ns: u64,
    /// Workload-defined completed units (requests, iterations).
    pub work_units: u64,
    /// Work units per simulated second.
    pub throughput: f64,
    /// Remote-invalidation rounds per simulated second — for Latr this
    /// counts lazily published states plus fallback IPI rounds, i.e. "TLB
    /// shootdowns handled" as Fig. 1/9 plot them.
    pub shootdowns_per_sec: f64,
    /// Page migrations per simulated second (Fig. 11).
    pub migrations_per_sec: f64,
    /// `munmap()` latency distribution, if any were issued.
    pub munmap_ns: Option<Summary>,
    /// Remote-shootdown wait distribution (sync policies only).
    pub shootdown_wait_ns: Option<Summary>,
    /// LLC miss ratio over the run (Table 4).
    pub llc_miss_ratio: f64,
    /// IPIs actually sent (Latr: only fallbacks).
    pub ipis_sent: u64,
    /// Latr fallback shootdown rounds (0 for other policies).
    pub latr_fallbacks: u64,
}

/// Runs `workload` on a fresh machine under `policy` for `duration`
/// simulated nanoseconds and distills the result.
pub fn run_experiment(
    mut config: MachineConfig,
    policy: PolicyKind,
    workload: Box<dyn Workload>,
    duration: Nanos,
) -> (ExperimentResult, Machine) {
    // Make runs comparable across policies: identical seed and topology.
    config.seed ^= 0x5eed;
    let mut machine = Machine::new(config);
    let start = machine.now();
    machine.run(workload, policy.build(), duration);
    let elapsed = (machine.now() - start).max(1);
    let secs = elapsed as f64 / 1e9;

    let sync_shootdowns = machine.stats.counter(metrics::SHOOTDOWNS);
    let lazy_shootdowns = machine.stats.counter(metrics::LATR_STATES_SAVED);
    let work_units = machine.stats.counter(metrics::WORK_UNITS);
    let result = ExperimentResult {
        policy: policy.label(),
        duration_ns: elapsed,
        work_units,
        throughput: work_units as f64 / secs,
        shootdowns_per_sec: (sync_shootdowns + lazy_shootdowns) as f64 / secs,
        migrations_per_sec: machine.stats.counter(metrics::MIGRATIONS) as f64 / secs,
        munmap_ns: machine
            .stats
            .histogram(metrics::MUNMAP_NS)
            .map(|h| h.summary()),
        shootdown_wait_ns: machine
            .stats
            .histogram(metrics::SHOOTDOWN_NS)
            .map(|h| h.summary()),
        llc_miss_ratio: machine.llc.stats().miss_ratio(),
        ipis_sent: machine.stats.counter(metrics::IPIS_SENT),
        latr_fallbacks: machine.stats.counter(metrics::LATR_FALLBACK_IPIS),
    };
    (result, machine)
}

/// Convenience: a [`MachineConfig`] for the given topology with the
/// calibrated cost model.
pub fn config_for(topology: Topology) -> MachineConfig {
    MachineConfig::new(topology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use latr_arch::MachinePreset;

    #[test]
    fn policy_kinds_build() {
        assert_eq!(PolicyKind::Linux.build().name(), "linux");
        assert_eq!(PolicyKind::Abis.build().name(), "abis");
        assert_eq!(PolicyKind::latr_default().build().name(), "latr");
        assert_eq!(PolicyKind::latr_default().label(), "latr");
    }

    #[test]
    fn run_experiment_produces_throughput() {
        let wl = crate::MunmapMicrobench::new(2, 1, 5);
        let (res, machine) = run_experiment(
            config_for(Topology::preset(MachinePreset::Commodity2S16C)),
            PolicyKind::Linux,
            Box::new(wl),
            latr_sim::SECOND,
        );
        assert_eq!(res.policy, "linux");
        assert_eq!(res.work_units, 5);
        assert!(res.throughput > 0.0);
        assert!(res.munmap_ns.is_some());
        assert_eq!(machine.check_reclamation_invariant(), None);
    }
}
