//! The Apache web-server model (§6.2.2, Figs. 1 and 9).
//!
//! "To serve an individual request, Apache `mmap()`s the requested file to
//! serve a request and `munmap()`s the file after the request has been
//! served. This behavior generates many TLB shootdowns due to the frequent
//! unmapping of (potentially) shared pages."
//!
//! Each worker core runs a closed loop: parse the request (compute), map
//! the 10 KB page-cache file (3 pages), touch it to build the response,
//! send (compute), unmap. All workers are threads of one process (Apache's
//! `mpm_event`), so they share one address space — which is exactly why
//! the munmap-held `mmap_sem` plus the synchronous shootdown wait caps
//! Linux's throughput beyond 6 cores while Latr keeps scaling.

use latr_arch::CpuId;
use latr_kernel::{metrics, Machine, Op, OpResult, TaskId, Workload};
use latr_mem::{FileId, VaRange};
use latr_sim::Nanos;

/// Per-request phases of one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Parse,
    Map,
    Touch(u64),
    Send,
    Unmap,
}

/// The Fig. 1/9 Apache workload.
#[derive(Debug)]
pub struct ApacheWorkload {
    workers: usize,
    file_pages: u64,
    parse_ns: Nanos,
    send_ns: Nanos,
    file: Option<FileId>,
    phase: Vec<Phase>,
    mapped: Vec<Option<VaRange>>,
}

impl ApacheWorkload {
    /// A server with `workers` worker cores serving a 10 KB static page
    /// (3 pages).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ApacheWorkload {
            workers,
            file_pages: 3,
            // Request parsing + response construction + socket handling,
            // calibrated so the unconstrained per-request service time is
            // ≈ 75 µs (Latr reaches ≈ 150 k req/s on 12 cores, Fig. 9).
            parse_ns: 22_000,
            send_ns: 38_000,
            file: None,
            phase: Vec::new(),
            mapped: Vec::new(),
        }
    }

    /// Overrides the compute portion of a request (ablations).
    pub fn with_compute(mut self, parse_ns: Nanos, send_ns: Nanos) -> Self {
        self.parse_ns = parse_ns;
        self.send_ns = send_ns;
        self
    }

    /// Number of worker cores.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Workload for ApacheWorkload {
    fn name(&self) -> &str {
        "apache"
    }

    fn setup(&mut self, machine: &mut Machine) {
        // One process (mpm_event), one worker thread pinned per core.
        let mm = machine.create_process();
        for c in 0..self.workers {
            machine.spawn_task(mm, CpuId(c as u16));
        }
        self.file = Some(machine.register_file(self.file_pages));
        self.phase = vec![Phase::Parse; self.workers];
        self.mapped = vec![None; self.workers];
    }

    fn next_op(&mut self, _machine: &mut Machine, task: TaskId) -> Op {
        let i = task.index();
        match self.phase[i] {
            Phase::Parse => {
                self.phase[i] = Phase::Map;
                Op::Compute(self.parse_ns)
            }
            Phase::Map => {
                self.phase[i] = Phase::Touch(0);
                Op::MmapFile {
                    file: self.file.expect("setup ran"),
                    offset: 0,
                    pages: self.file_pages,
                }
            }
            Phase::Touch(n) => {
                let range = self.mapped[i].expect("mapped before touch");
                self.phase[i] = if n + 1 < self.file_pages {
                    Phase::Touch(n + 1)
                } else {
                    Phase::Send
                };
                Op::Access {
                    vpn: range.start.offset(n),
                    write: false,
                }
            }
            Phase::Send => {
                self.phase[i] = Phase::Unmap;
                Op::Compute(self.send_ns)
            }
            Phase::Unmap => {
                self.phase[i] = Phase::Parse;
                Op::Munmap {
                    range: self.mapped[i].take().expect("mapped before unmap"),
                }
            }
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        let i = task.index();
        match result.op {
            Op::MmapFile { .. } => {
                self.mapped[i] = machine.task(task).last_mmap;
            }
            Op::Munmap { .. } => {
                // One request served end to end.
                machine.stats.inc(metrics::WORK_UNITS);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{config_for, run_experiment, PolicyKind};
    use latr_arch::{MachinePreset, Topology};
    use latr_sim::MILLISECOND;

    fn throughput(policy: PolicyKind, workers: usize) -> crate::ExperimentResult {
        let (res, machine) = run_experiment(
            config_for(Topology::preset(MachinePreset::Commodity2S16C)),
            policy,
            Box::new(ApacheWorkload::new(workers)),
            400 * MILLISECOND,
        );
        assert_eq!(machine.check_reclamation_invariant(), None);
        res
    }

    #[test]
    fn serves_requests_on_one_core() {
        let res = throughput(PolicyKind::Linux, 1);
        assert!(res.work_units > 1000, "served {}", res.work_units);
        // Single worker: no remote cores, no shootdowns.
        assert_eq!(res.ipis_sent, 0);
    }

    #[test]
    fn fig9_linux_stops_scaling_after_6_cores() {
        let at6 = throughput(PolicyKind::Linux, 6).throughput;
        let at12 = throughput(PolicyKind::Linux, 12).throughput;
        assert!(
            at12 < at6 * 1.35,
            "Linux must flatten: 6 cores {at6:.0}/s vs 12 cores {at12:.0}/s"
        );
    }

    #[test]
    fn fig9_latr_keeps_scaling_and_beats_linux() {
        let linux12 = throughput(PolicyKind::Linux, 12).throughput;
        let latr6 = throughput(PolicyKind::latr_default(), 6).throughput;
        let latr12 = throughput(PolicyKind::latr_default(), 12).throughput;
        assert!(
            latr12 > latr6 * 1.5,
            "Latr must keep scaling: {latr6:.0} -> {latr12:.0}"
        );
        let gain = latr12 / linux12 - 1.0;
        assert!(
            gain > 0.35,
            "Latr vs Linux at 12 cores: +{:.0}% (paper: +59.9%)",
            gain * 100.0
        );
    }

    #[test]
    fn fig9_latr_handles_more_shootdowns_than_linux() {
        let linux = throughput(PolicyKind::Linux, 12);
        let latr = throughput(PolicyKind::latr_default(), 12);
        assert!(
            latr.shootdowns_per_sec > linux.shootdowns_per_sec * 1.2,
            "latr {:.0}/s vs linux {:.0}/s (paper: +46.3%)",
            latr.shootdowns_per_sec,
            linux.shootdowns_per_sec
        );
    }

    #[test]
    fn fig9_abis_crosses_linux_at_higher_core_counts() {
        let linux4 = throughput(PolicyKind::Linux, 4).throughput;
        let abis4 = throughput(PolicyKind::Abis, 4).throughput;
        let linux12 = throughput(PolicyKind::Linux, 12).throughput;
        let abis12 = throughput(PolicyKind::Abis, 12).throughput;
        assert!(
            abis4 < linux4,
            "ABIS tracking overhead should lose at 4 cores: {abis4:.0} vs {linux4:.0}"
        );
        assert!(
            abis12 > linux12,
            "ABIS should win at 12 cores: {abis12:.0} vs {linux12:.0}"
        );
    }

    #[test]
    fn fig9_latr_beats_abis() {
        let abis12 = throughput(PolicyKind::Abis, 12).throughput;
        let latr12 = throughput(PolicyKind::latr_default(), 12).throughput;
        let gain = latr12 / abis12 - 1.0;
        assert!(
            gain > 0.15,
            "Latr vs ABIS at 12 cores: +{:.0}% (paper: +37.9%)",
            gain * 100.0
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ApacheWorkload::new(0);
    }
}
