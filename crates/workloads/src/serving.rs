//! The open-loop serving workload behind `BENCH_serving.json` (PR 10).
//!
//! The closed-loop [`ApacheWorkload`](crate::ApacheWorkload) measures
//! *throughput*: each worker starts its next request the instant the
//! previous one finishes, so shootdown stalls shrink the request count
//! but never show up as queueing. Tail latency needs the opposite
//! shape — an **open loop**, where requests arrive on their own clock
//! whether or not the server keeps up. Every microsecond a worker loses
//! to a synchronous shootdown (or to `mmap_sem` held across one) turns
//! into queueing delay for the requests behind it, which is exactly the
//! p99/p999 inflation Latr's lazy path removes.
//!
//! Each worker core owns a deterministic arrival stream (Poisson, or an
//! on/off-modulated bursty variant) generated from a per-worker
//! [`SimRng`] fork, so runs are bit-identical across engines and the
//! differential suites can gate on [`Machine::fingerprint`]. Workers are
//! partitioned into several processes (many mms): threads of one process
//! share an address space — and its `mmap_sem` and shootdown targets —
//! while separate processes stress the per-`(mm, tick)` sweep grouping.
//!
//! A request is the Apache cycle with page-cache churn: parse (compute),
//! `mmap()` a randomly chosen slice of one of the process's page-cache
//! files (occasionally an anonymous buffer instead), touch every mapped
//! page, send (compute), `munmap()`. Request latency — arrival to unmap
//! completion, queueing included — lands in the
//! [`metrics::SERVING_REQUEST_NS`] histogram.

use latr_arch::CpuId;
use latr_kernel::{metrics, Machine, Op, OpResult, TaskId, Workload};
use latr_mem::{FileId, VaRange};
use latr_sim::{Nanos, SimRng, MILLISECOND};

/// How request arrivals are spread over time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival times with the
    /// workload's mean.
    Poisson,
    /// On/off-modulated Poisson: inside the first `on_pct` percent of
    /// every `period`, the arrival rate is `factor`× the base; outside
    /// it, `1/factor`×. Same mean count per period, much spikier queues.
    Bursty {
        /// Modulation period (ns).
        period: Nanos,
        /// Percentage of the period spent in the burst (1..=99).
        on_pct: u8,
        /// Rate multiplier inside the burst window.
        factor: f64,
    },
}

/// Per-request phases of one worker (the in-service request).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// No request in service: waiting on the arrival stream.
    Idle,
    Map,
    Touch(u64, u64),
    Send,
    Unmap,
}

/// The open-loop serving workload.
#[derive(Debug)]
pub struct ServingWorkload {
    workers: usize,
    procs: usize,
    requests_per_worker: u64,
    mean_interarrival: f64,
    arrivals: ArrivalProcess,
    parse_ns: Nanos,
    send_ns: Nanos,
    file_pages: u64,
    files_per_proc: usize,
    seed: u64,
    // Per-process page-cache file sets, filled by `setup`.
    files: Vec<Vec<FileId>>,
    // Per-worker state.
    rng: Vec<SimRng>,
    next_arrival: Vec<u64>,
    arrival: Vec<u64>,
    served: Vec<u64>,
    phase: Vec<Phase>,
    mapped: Vec<Option<VaRange>>,
    linger: Vec<u8>,
}

impl ServingWorkload {
    /// An open-loop server: `workers` worker cores split round-robin
    /// across `procs` processes, each worker admitting
    /// `requests_per_worker` requests from its own Poisson stream
    /// (mean inter-arrival 60 µs — moderate load on the calibrated
    /// cost model, so the tail is queueing-driven, not saturation).
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `procs` is zero, or `procs > workers`.
    pub fn new(workers: usize, procs: usize, requests_per_worker: u64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            procs > 0 && procs <= workers,
            "procs must be in 1..=workers"
        );
        ServingWorkload {
            workers,
            procs,
            requests_per_worker,
            mean_interarrival: 60_000.0,
            arrivals: ArrivalProcess::Poisson,
            parse_ns: 4_000,
            send_ns: 7_000,
            file_pages: 16,
            files_per_proc: 4,
            seed: 0x5e21,
            files: Vec::new(),
            rng: Vec::new(),
            next_arrival: Vec::new(),
            arrival: Vec::new(),
            served: Vec::new(),
            phase: Vec::new(),
            mapped: Vec::new(),
            linger: Vec::new(),
        }
    }

    /// Overrides the arrival process (default Poisson).
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        if let ArrivalProcess::Bursty { period, on_pct, .. } = arrivals {
            assert!(period > 0, "burst period must be positive");
            assert!((1..=99).contains(&on_pct), "on_pct must be in 1..=99");
        }
        self.arrivals = arrivals;
        self
    }

    /// Overrides the mean inter-arrival time per worker (ns).
    #[must_use]
    pub fn with_mean_interarrival(mut self, ns: Nanos) -> Self {
        assert!(ns > 0, "mean inter-arrival must be positive");
        self.mean_interarrival = ns as f64;
        self
    }

    /// Overrides the arrival-stream seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total requests the run will admit.
    pub fn total_requests(&self) -> u64 {
        self.workers as u64 * self.requests_per_worker
    }

    /// Inter-arrival sample for worker `i`'s stream, for a request
    /// arriving at absolute time `at`.
    fn interarrival(&mut self, i: usize, at: u64) -> u64 {
        let mean = match self.arrivals {
            ArrivalProcess::Poisson => self.mean_interarrival,
            ArrivalProcess::Bursty {
                period,
                on_pct,
                factor,
            } => {
                let in_burst = (at % period) * 100 < period * u64::from(on_pct);
                if in_burst {
                    self.mean_interarrival / factor
                } else {
                    self.mean_interarrival * factor
                }
            }
        };
        self.rng[i].exp(mean)
    }
}

impl Workload for ServingWorkload {
    fn name(&self) -> &str {
        "serving"
    }

    fn setup(&mut self, machine: &mut Machine) {
        self.files = (0..self.procs)
            .map(|_| {
                (0..self.files_per_proc)
                    .map(|_| machine.register_file(self.file_pages))
                    .collect()
            })
            .collect();
        // Round-robin workers over processes: threads of one process
        // share an mm (and its mmap_sem / shootdown targets).
        let mms: Vec<_> = (0..self.procs).map(|_| machine.create_process()).collect();
        for c in 0..self.workers {
            machine.spawn_task(mms[c % self.procs], CpuId(c as u16));
        }
        let mut root = SimRng::new(self.seed);
        self.rng = (0..self.workers).map(|i| root.fork(i as u64)).collect();
        // First arrivals are themselves exponential draws, staggering the
        // streams from t=0.
        self.next_arrival = (0..self.workers)
            .map(|i| self.rng[i].exp(self.mean_interarrival))
            .collect();
        self.arrival = vec![0; self.workers];
        self.served = vec![0; self.workers];
        self.phase = vec![Phase::Idle; self.workers];
        self.mapped = vec![None; self.workers];
        self.linger = vec![14; self.workers];
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        let i = task.index();
        match self.phase[i] {
            Phase::Idle => {
                if self.served[i] >= self.requests_per_worker {
                    // Done admitting: linger across scheduler ticks so
                    // lazy reclamation retires while cores still sweep.
                    if self.linger[i] == 0 {
                        return Op::Exit;
                    }
                    self.linger[i] -= 1;
                    return Op::Sleep(MILLISECOND);
                }
                let now = machine.now().as_ns();
                if self.next_arrival[i] > now {
                    // Open loop: the server is ahead of its arrival
                    // stream — sleep until the next request lands.
                    return Op::Sleep(self.next_arrival[i] - now);
                }
                // Admit the request that arrived at `next_arrival` (it may
                // have queued behind the previous one — that delay is the
                // latency being measured) and draw the one after it.
                let arrived = self.next_arrival[i];
                self.arrival[i] = arrived;
                self.next_arrival[i] = arrived + self.interarrival(i, arrived);
                self.phase[i] = Phase::Map;
                Op::Compute(self.parse_ns)
            }
            Phase::Map => {
                // Page-cache churn: a random slice of a random file of
                // this worker's process; every 8th request or so maps an
                // anonymous response buffer instead.
                let pages = self.rng[i].range(1, 3);
                self.phase[i] = Phase::Touch(0, pages);
                if self.rng[i].chance(0.125) {
                    Op::MmapAnon { pages }
                } else {
                    let set = &self.files[i % self.procs];
                    let file = set[self.rng[i].index(set.len())];
                    let offset = self.rng[i].below(self.file_pages - pages + 1);
                    Op::MmapFile {
                        file,
                        offset,
                        pages,
                    }
                }
            }
            Phase::Touch(n, pages) => {
                let range = self.mapped[i].expect("mapped before touch");
                self.phase[i] = if n + 1 < pages {
                    Phase::Touch(n + 1, pages)
                } else {
                    Phase::Send
                };
                Op::Access {
                    vpn: range.start.offset(n),
                    write: n == 0,
                }
            }
            Phase::Send => {
                self.phase[i] = Phase::Unmap;
                Op::Compute(self.send_ns)
            }
            Phase::Unmap => {
                self.phase[i] = Phase::Idle;
                Op::Munmap {
                    range: self.mapped[i].take().expect("mapped before unmap"),
                }
            }
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        let i = task.index();
        match result.op {
            Op::MmapFile { .. } | Op::MmapAnon { .. } => {
                self.mapped[i] = machine.task(task).last_mmap;
            }
            Op::Munmap { .. } => {
                // One request served end to end: arrival → unmap done.
                let latency = machine.now().as_ns().saturating_sub(self.arrival[i]);
                machine.stats.record(metrics::SERVING_REQUEST_NS, latency);
                machine.stats.inc(metrics::WORK_UNITS);
                self.served[i] += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{config_for, run_experiment, PolicyKind};
    use latr_arch::{MachinePreset, Topology};
    use latr_sim::SECOND;

    fn run(policy: PolicyKind, arrivals: ArrivalProcess) -> (crate::ExperimentResult, Machine) {
        let wl = ServingWorkload::new(16, 4, 40).with_arrivals(arrivals);
        let (res, machine) = run_experiment(
            config_for(Topology::preset(MachinePreset::Commodity2S16C)),
            policy,
            Box::new(wl),
            10 * SECOND,
        );
        assert_eq!(machine.check_reclamation_invariant(), None);
        assert_eq!(machine.check_mapping_coherence(), None);
        (res, machine)
    }

    #[test]
    fn serves_every_admitted_request() {
        let (res, machine) = run(PolicyKind::latr_default(), ArrivalProcess::Poisson);
        assert_eq!(res.work_units, 16 * 40);
        let h = machine
            .stats
            .histogram(metrics::SERVING_REQUEST_NS)
            .expect("request latencies recorded");
        assert_eq!(h.count(), 16 * 40);
        // Only page-cache residency survives the run (file frames are
        // kept by the cache, not leaked by requests).
        assert!(
            machine.frames.allocated_count() <= 4 * 4 * 16,
            "no frames beyond the page cache: {}",
            machine.frames.allocated_count()
        );
    }

    #[test]
    fn bursty_arrivals_inflate_the_tail() {
        let (_, calm) = run(PolicyKind::Linux, ArrivalProcess::Poisson);
        let (_, bursty) = run(
            PolicyKind::Linux,
            ArrivalProcess::Bursty {
                period: 4 * MILLISECOND,
                on_pct: 25,
                factor: 3.0,
            },
        );
        let p99 = |m: &Machine| {
            m.stats
                .histogram(metrics::SERVING_REQUEST_NS)
                .expect("histogram")
                .summary()
                .p99
        };
        assert!(
            p99(&bursty) > p99(&calm),
            "burst p99 {} must exceed calm p99 {}",
            p99(&bursty),
            p99(&calm)
        );
    }

    #[test]
    fn latency_includes_queueing_delay() {
        // Overloaded: arrivals far faster than service — latency must
        // grow well past the per-request service time.
        let wl = ServingWorkload::new(4, 2, 30).with_mean_interarrival(2_000);
        let (res, machine) = run_experiment(
            config_for(Topology::preset(MachinePreset::Commodity2S16C)),
            PolicyKind::Linux,
            Box::new(wl),
            10 * SECOND,
        );
        assert_eq!(res.work_units, 4 * 30);
        let s = machine
            .stats
            .histogram(metrics::SERVING_REQUEST_NS)
            .expect("histogram")
            .summary();
        assert!(
            s.max > 100_000,
            "overload must queue: max latency {} ns",
            s.max
        );
    }

    #[test]
    fn streams_are_deterministic() {
        let (a, ma) = run(PolicyKind::latr_default(), ArrivalProcess::Poisson);
        let (b, mb) = run(PolicyKind::latr_default(), ArrivalProcess::Poisson);
        assert_eq!(a.work_units, b.work_units);
        assert_eq!(ma.fingerprint(), mb.fingerprint());
    }

    #[test]
    #[should_panic(expected = "procs must be in 1..=workers")]
    fn too_many_procs_panics() {
        let _ = ServingWorkload::new(2, 3, 1);
    }

    #[test]
    #[should_panic(expected = "on_pct must be in 1..=99")]
    fn bad_burst_window_panics() {
        let _ = ServingWorkload::new(2, 1, 1).with_arrivals(ArrivalProcess::Bursty {
            period: MILLISECOND,
            on_pct: 0,
            factor: 2.0,
        });
    }
}
