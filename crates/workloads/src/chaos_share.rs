//! The cross-core sharing workload behind the chaos and differential
//! suites.
//!
//! Every task maps, writes, reads a neighbour's live page (planting
//! remote TLB entries that sweeps must clear), occasionally `mprotect`s
//! (an always-synchronous shootdown, keeping real IPI traffic flowing
//! for the fault-injection drop/delay/retry paths), then unmaps and
//! computes. After its rounds it lingers across scheduler ticks so
//! published states retire and reclamation completes while the machine
//! is still live.
//!
//! `tests/chaos.rs` runs this under every `latr_faults::FaultPlan`
//! class; `tests/differential.rs` replays the same plans on the fast and
//! `reference` engines and asserts bit-identical fingerprints.

use latr_arch::CpuId;
use latr_kernel::{Machine, Op, OpResult, TaskId, Workload};
use latr_mem::{Prot, VaRange};
use latr_sim::MILLISECOND;

/// Cross-core churn on one shared address space.
#[derive(Debug)]
pub struct ChaosShare {
    cores: usize,
    rounds: u32,
    step: Vec<u8>,
    done_rounds: Vec<u32>,
    linger: Vec<u8>,
    current: Vec<Option<VaRange>>,
}

impl ChaosShare {
    /// A workload of `cores` tasks each running `rounds` rounds of the
    /// map/write/peek/mprotect/unmap/compute cycle.
    pub fn new(cores: usize, rounds: u32) -> Self {
        ChaosShare {
            cores,
            rounds,
            step: vec![0; cores],
            done_rounds: vec![0; cores],
            linger: vec![0; cores],
            current: vec![None; cores],
        }
    }
}

impl Workload for ChaosShare {
    fn name(&self) -> &str {
        "chaos-share"
    }

    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        for c in 0..self.cores {
            machine.spawn_task(mm, CpuId(c as u16));
        }
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        let _ = machine;
        let i = task.index();
        if self.done_rounds[i] >= self.rounds {
            // Linger long enough for two-tick reclamation (plus watchdog
            // escalations) to finish while other cores still tick.
            if self.linger[i] >= 14 {
                return Op::Exit;
            }
            self.linger[i] += 1;
            return Op::Sleep(MILLISECOND);
        }
        let step = self.step[i];
        self.step[i] = (step + 1) % 6;
        match step {
            0 => Op::MmapAnon { pages: 2 },
            1 => match self.current[i] {
                Some(r) => Op::Access {
                    vpn: r.start,
                    write: true,
                },
                None => Op::Sleep(5_000),
            },
            2 => {
                // Read a neighbour's live page: the cross-core TLB entry
                // is what makes sweeps — and faults in them — matter.
                let n = (i + 1) % self.cores;
                match self.current[n] {
                    Some(r) => Op::Access {
                        vpn: r.start,
                        write: false,
                    },
                    None => Op::Sleep(5_000),
                }
            }
            3 => match self.current[i] {
                Some(r) if self.done_rounds[i] % 3 == (i as u32) % 3 => Op::Mprotect {
                    range: r,
                    prot: Prot::READ_WRITE,
                },
                _ => Op::Compute(20_000),
            },
            4 => match self.current[i].take() {
                Some(r) => Op::Munmap { range: r },
                None => Op::Sleep(5_000),
            },
            _ => {
                self.done_rounds[i] += 1;
                Op::Compute(250_000)
            }
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        if let Op::MmapAnon { .. } = result.op {
            self.current[task.index()] = machine.task(task).last_mmap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;
    use latr_arch::{MachinePreset, Topology};
    use latr_kernel::MachineConfig;
    use latr_sim::SECOND;

    #[test]
    fn completes_and_stays_coherent() {
        let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
        config.seed = 11;
        let mut machine = Machine::new(config);
        machine.run(
            Box::new(ChaosShare::new(4, 8)),
            PolicyKind::latr_default().build(),
            SECOND,
        );
        assert_eq!(machine.check_reclamation_invariant(), None);
        assert_eq!(machine.check_mapping_coherence(), None);
        assert_eq!(machine.frames.allocated_count(), 0);
    }
}
