//! The allocation-storm workload behind the memory-pressure suite
//! (DESIGN.md §14, EXPERIMENTS.md "Allocation storms").
//!
//! Every task runs map → touch-every-page → neighbour-read → unmap
//! cycles while *holding* a window of its most recent mappings, so live
//! memory ramps to `cores × hold × pages` pages and every unmap's frames
//! sit parked on the lazy-reclaim list for two more ticks. Against a
//! machine sized with a small `frames_per_node`, that combination drives
//! nodes through their low (and, for the bare-lazy policy, min)
//! watermarks: the storm the expedited-sweep escalation exists to ride
//! out. The neighbour read keeps a remote core in every mapping's
//! cpumask, so frees publish real Latr states and reclamation is gated —
//! parked frames are only recoverable by sweeps, exactly what pressure
//! expedition accelerates.
//!
//! Deterministic by construction: no randomness, all phase state is a
//! pure function of completed ops, so fingerprints are replayable under
//! any `latr_faults::FaultPlan`.

use latr_arch::CpuId;
use latr_kernel::{Machine, Op, OpResult, TaskId, Workload};
use latr_mem::VaRange;
use latr_sim::MILLISECOND;
use std::collections::VecDeque;

/// Allocation-heavy churn with a held working-set window.
#[derive(Debug)]
pub struct AllocStorm {
    cores: usize,
    rounds: u32,
    /// Pages per burst mapping.
    pages: u64,
    /// Mappings each task holds live before unmapping the oldest.
    hold: usize,
    step: Vec<u8>,
    touch_idx: Vec<u64>,
    done_rounds: Vec<u32>,
    linger: Vec<u8>,
    held: Vec<VecDeque<VaRange>>,
}

impl AllocStorm {
    /// A storm of `cores` tasks, each running `rounds` map/touch/unmap
    /// cycles of `pages`-page mappings while holding `hold` mappings
    /// live. Peak demand is roughly `cores × (hold + 1) × pages` frames
    /// plus whatever reclamation has parked.
    pub fn new(cores: usize, rounds: u32, pages: u64, hold: usize) -> Self {
        AllocStorm {
            cores,
            rounds,
            pages: pages.max(1),
            hold: hold.max(1),
            step: vec![0; cores],
            touch_idx: vec![0; cores],
            done_rounds: vec![0; cores],
            linger: vec![0; cores],
            held: vec![VecDeque::new(); cores],
        }
    }
}

impl Workload for AllocStorm {
    fn name(&self) -> &str {
        "alloc-storm"
    }

    fn setup(&mut self, machine: &mut Machine) {
        let mm = machine.create_process();
        for c in 0..self.cores {
            machine.spawn_task(mm, CpuId(c as u16));
        }
    }

    fn next_op(&mut self, machine: &mut Machine, task: TaskId) -> Op {
        let _ = machine;
        let i = task.index();
        if self.done_rounds[i] >= self.rounds {
            // Wind-down: release the held window one mapping per op, then
            // linger so the parked frames' two-tick reclamation (and any
            // pressure escalation still in flight) completes on a live
            // machine.
            if let Some(r) = self.held[i].pop_front() {
                return Op::Munmap { range: r };
            }
            if self.linger[i] >= 14 {
                return Op::Exit;
            }
            self.linger[i] += 1;
            return Op::Sleep(MILLISECOND);
        }
        let step = self.step[i];
        match step {
            // Burst allocation: one multi-page mapping.
            0 => {
                self.step[i] = 1;
                self.touch_idx[i] = 0;
                Op::MmapAnon { pages: self.pages }
            }
            // Touch every page — each touch is a demand fault, i.e. a
            // frame allocation under whatever pressure the storm built.
            1 => match self.held[i].back().copied() {
                Some(r) => {
                    let idx = self.touch_idx[i];
                    self.touch_idx[i] += 1;
                    if self.touch_idx[i] >= r.pages {
                        self.step[i] = 2;
                    }
                    Op::Access {
                        vpn: latr_mem::Vpn(r.start.0 + idx),
                        write: true,
                    }
                }
                None => {
                    self.step[i] = 0;
                    Op::Sleep(5_000)
                }
            },
            // Plant a remote TLB entry so the coming free really defers.
            2 => {
                self.step[i] = 3;
                let n = (i + 1) % self.cores;
                match self.held[n].back().copied() {
                    Some(r) => Op::Access {
                        vpn: r.start,
                        write: false,
                    },
                    None => Op::Sleep(5_000),
                }
            }
            // Slide the window: unmap the oldest held mapping once the
            // window is full (a steady stream of parked frames).
            3 => {
                self.step[i] = 4;
                if self.held[i].len() > self.hold {
                    match self.held[i].pop_front() {
                        Some(r) => Op::Munmap { range: r },
                        None => Op::Sleep(5_000),
                    }
                } else {
                    Op::Compute(10_000)
                }
            }
            // Short think time, next round. Kept well under a tick so
            // allocation outpaces background reclamation — that imbalance
            // *is* the storm.
            _ => {
                self.step[i] = 0;
                self.done_rounds[i] += 1;
                Op::Compute(50_000)
            }
        }
    }

    fn on_op_complete(&mut self, machine: &mut Machine, task: TaskId, result: OpResult) {
        if let Op::MmapAnon { .. } = result.op {
            if let Some(r) = machine.task(task).last_mmap {
                self.held[task.index()].push_back(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;
    use latr_arch::{MachinePreset, Topology};
    use latr_kernel::{metrics, MachineConfig};
    use latr_sim::SECOND;

    #[test]
    fn completes_and_stays_coherent() {
        let mut config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
        config.seed = 7;
        let mut machine = Machine::new(config);
        machine.run(
            Box::new(AllocStorm::new(4, 6, 4, 2)),
            PolicyKind::latr_default().build(),
            SECOND,
        );
        assert_eq!(machine.check_reclamation_invariant(), None);
        assert_eq!(machine.check_mapping_coherence(), None);
        assert_eq!(machine.frames.allocated_count(), 0);
        assert!(machine.stats.counter(metrics::LATR_DEFERRED_FRAMES) > 0);
    }

    #[test]
    fn storm_drives_watermark_pressure() {
        // 8 tasks × (3+1 held) × 8 pages ≈ 256 page frames of demand
        // against 160 frames/node: the low watermark must trip.
        let topo = Topology::preset(MachinePreset::Commodity2S16C);
        let mut config = MachineConfig::new(topo).with_watermarks(96, 16);
        config.frames_per_node = 160;
        config.seed = 7;
        let mut machine = Machine::new(config);
        machine.run(
            Box::new(AllocStorm::new(8, 10, 8, 3)),
            PolicyKind::latr_default().build(),
            SECOND,
        );
        assert!(
            machine.stats.counter(metrics::MEM_PRESSURE_LOW_EVENTS) > 0,
            "storm must cross the low watermark"
        );
        assert_eq!(machine.check_reclamation_invariant(), None);
        assert_eq!(machine.check_mapping_coherence(), None);
        assert_eq!(machine.frames.allocated_count(), 0);
    }
}
