//! `latr-lint`: a protocol-aware static analyzer for the rt runtime.
//!
//! The rt memory model is written down once, machine-readably, in
//! `crates/core/src/rt/PROTOCOL.toml`. This crate parses the rt sources
//! (no `syn`; a small lexer + item extractor, offline-friendly) and
//! enforces that spec: atomic-ordering discipline, hot-path allocation
//! freedom, lock discipline, and loom-shim hygiene. See
//! [`analyze`] for the checks and [`protocol`] for the spec format.
//!
//! The `latr-lint` binary wires this up for the workspace:
//! `cargo run -p latr-lint -- --workspace` exits non-zero on any
//! diagnostic and is a hard CI gate.

pub mod analyze;
pub mod lexer;
pub mod parser;
pub mod protocol;

pub use analyze::{analyze_dir, analyze_sources, CfgEnv, Check, Diagnostic, Report};
pub use protocol::{ProtocolSpec, SpecParseError};
