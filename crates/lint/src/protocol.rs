//! The machine-readable rt concurrency protocol: `PROTOCOL.toml`.
//!
//! This is the single source of truth for the rt memory model (DESIGN.md
//! §13): which `Ordering`s each atomic field admits, which locks exist
//! and how they may be taken on sweep-reachable paths, which functions
//! root the hot-path allocation walk, and which fences are sanctioned.
//!
//! The wire format is a small TOML subset (tables, arrays-of-tables,
//! strings, integers, booleans, string arrays) parsed by hand, the same
//! posture as `ThreadFaultPlan`'s config format in `latr-faults`: a
//! hand-written [`ProtocolSpec::parse`]/[`ProtocolSpec::to_config_string`]
//! pair with per-line errors, unknown keys rejected
//! (`deny_unknown_fields`), and a whole-spec [`ProtocolSpec::validate`].

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A memory ordering name, spelled exactly as in
/// `std::sync::atomic::Ordering`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OrderingName {
    /// `Ordering::Relaxed`
    Relaxed,
    /// `Ordering::Acquire`
    Acquire,
    /// `Ordering::Release`
    Release,
    /// `Ordering::AcqRel`
    AcqRel,
    /// `Ordering::SeqCst`
    SeqCst,
}

impl OrderingName {
    /// Every ordering, in strength-ish order.
    pub const ALL: [OrderingName; 5] = [
        OrderingName::Relaxed,
        OrderingName::Acquire,
        OrderingName::Release,
        OrderingName::AcqRel,
        OrderingName::SeqCst,
    ];

    /// Parses the Rust spelling (`"AcqRel"`), rejecting anything else.
    pub fn parse_name(s: &str) -> Option<Self> {
        Some(match s {
            "Relaxed" => OrderingName::Relaxed,
            "Acquire" => OrderingName::Acquire,
            "Release" => OrderingName::Release,
            "AcqRel" => OrderingName::AcqRel,
            "SeqCst" => OrderingName::SeqCst,
            _ => return None,
        })
    }

    /// The Rust spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            OrderingName::Relaxed => "Relaxed",
            OrderingName::Acquire => "Acquire",
            OrderingName::Release => "Release",
            OrderingName::AcqRel => "AcqRel",
            OrderingName::SeqCst => "SeqCst",
        }
    }
}

impl fmt::Display for OrderingName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One atomic field's contract: who owns it, what it is, and which
/// orderings each access kind admits.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FieldSpec {
    /// The struct that declares the field (spec entries are keyed by
    /// `(owner, name)` — `active` on `Slot` and on `RtQueue` are
    /// different contracts).
    pub owner: String,
    /// The field name.
    pub name: String,
    /// The atomic type, for documentation and sanity (`AtomicU64`,
    /// `AtomicBool`, `AtomicUsize`, `AtomicCpuMask`, ...).
    pub atomic_type: String,
    /// Whether the field's accessors thread a caller-supplied `Ordering`
    /// parameter instead of a literal (the `AtomicCpuMask::words` case).
    /// Non-literal ordering arguments are only accepted on parametric
    /// fields; the literals at the *call sites* of the wrapping methods
    /// are still validated against the outer field's spec.
    pub parametric: bool,
    /// Allowed orderings for loads (and load-like mask reads: `test`,
    /// `load_words`, `is_empty`, `count`).
    pub load: Vec<OrderingName>,
    /// Allowed orderings for stores (and `store_words`).
    pub store: Vec<OrderingName>,
    /// Allowed *success* orderings for RMWs (`fetch_*`, `swap`,
    /// `compare_exchange*`).
    pub rmw: Vec<OrderingName>,
    /// Allowed *failure* orderings for `compare_exchange*`.
    pub rmw_failure: Vec<OrderingName>,
    /// Why these orderings — one human sentence, required (the spec is
    /// documentation first).
    pub rationale: String,
}

/// One lock's contract.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct LockSpec {
    /// The struct that declares the mutex field.
    pub owner: String,
    /// The field name.
    pub name: String,
    /// The lock class for ordering purposes (`[lock_order].classes`).
    pub class: String,
    /// When true, sweep-reachable code may only use `try_lock` on this
    /// lock; blocking `lock()` is an error unless the containing
    /// function is in `blocking_allowed`.
    pub sweep_try_only: bool,
    /// `Owner::fn` names sanctioned to block on this lock even though
    /// they are sweep-reachable (each needs a rationale in DESIGN.md).
    pub blocking_allowed: Vec<String>,
    /// Why the discipline — required.
    pub rationale: String,
}

/// The hot-path allocation contract.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct HotPathSpec {
    /// `Owner::fn` names that must carry `#[latr::hot_path]`; the lint
    /// fails if an annotation is deleted. Extra annotations in code are
    /// allowed (they only widen the checked set).
    pub roots: Vec<String>,
    /// Receiver identifiers (caller-supplied reusable buffers) on which
    /// amortized growth (`push` & co.) is sanctioned in hot code.
    pub amortized_receivers: Vec<String>,
}

/// The whole protocol: `crates/core/src/rt/PROTOCOL.toml`, parsed.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ProtocolSpec {
    /// Format version; currently always 1.
    pub version: u32,
    /// Orderings allowed on free `fence(...)` calls in rt code.
    pub fences_allowed: Vec<OrderingName>,
    /// Lock classes in their global acquisition order.
    pub lock_order: Vec<String>,
    /// The hot-path allocation contract.
    pub hot_path: HotPathSpec,
    /// Every atomic field in the rt module, keyed `(owner, name)`.
    pub fields: Vec<FieldSpec>,
    /// Every mutex field in the rt module.
    pub locks: Vec<LockSpec>,
}

/// A spec parse error with the 1-based line it was found on (line 0 =
/// whole-spec validation), mirroring `PlanParseError`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecParseError {
    /// 1-based line number; 0 for whole-spec validation errors.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "PROTOCOL.toml: {}", self.message)
        } else {
            write!(f, "PROTOCOL.toml:{}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecParseError {}

fn err(line: usize, message: impl Into<String>) -> SpecParseError {
    SpecParseError {
        line,
        message: message.into(),
    }
}

/// One parsed TOML-subset value.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    StrList(Vec<String>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::StrList(_) => "string array",
        }
    }
}

/// Which table the parser is currently filling.
enum Section {
    None,
    Protocol,
    Fences,
    HotPath,
    LockOrder,
    Field,
    Lock,
}

fn parse_quoted(s: &str, line: usize) -> Result<(String, &str), SpecParseError> {
    let rest = s
        .strip_prefix('"')
        .ok_or_else(|| err(line, format!("expected a quoted string, found `{s}`")))?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                other => {
                    return Err(err(
                        line,
                        format!("unsupported escape `\\{}`", other.map_or(' ', |(_, c)| c)),
                    ))
                }
            },
            c => out.push(c),
        }
    }
    Err(err(line, "unterminated string"))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn parse_value(s: &str, line: usize) -> Result<Value, SpecParseError> {
    let s = s.trim();
    if s.starts_with('"') {
        let (v, rest) = parse_quoted(s, line)?;
        if !rest.trim().is_empty() {
            return Err(err(line, format!("trailing input after string: `{rest}`")));
        }
        return Ok(Value::Str(v));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(line, "unterminated array"))?;
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let (item, after) = parse_quoted(rest, line)?;
            items.push(item);
            rest = after.trim();
            if let Some(after_comma) = rest.strip_prefix(',') {
                rest = after_comma.trim();
            } else if !rest.is_empty() {
                return Err(err(line, format!("expected `,` in array, found `{rest}`")));
            }
        }
        return Ok(Value::StrList(items));
    }
    if let Ok(v) = s.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    Err(err(line, format!("unparseable value `{s}`")))
}

fn orderings(v: Value, key: &str, line: usize) -> Result<Vec<OrderingName>, SpecParseError> {
    let Value::StrList(items) = v else {
        return Err(err(
            line,
            format!(
                "`{key}` must be an array of ordering names, found {}",
                v.kind()
            ),
        ));
    };
    items
        .into_iter()
        .map(|s| {
            OrderingName::parse_name(&s)
                .ok_or_else(|| err(line, format!("unknown ordering name `{s}` in `{key}`")))
        })
        .collect()
}

fn string(v: Value, key: &str, line: usize) -> Result<String, SpecParseError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(err(
            line,
            format!("`{key}` must be a string, found {}", other.kind()),
        )),
    }
}

fn strings(v: Value, key: &str, line: usize) -> Result<Vec<String>, SpecParseError> {
    match v {
        Value::StrList(s) => Ok(s),
        other => Err(err(
            line,
            format!("`{key}` must be a string array, found {}", other.kind()),
        )),
    }
}

fn boolean(v: Value, key: &str, line: usize) -> Result<bool, SpecParseError> {
    match v {
        Value::Bool(b) => Ok(b),
        other => Err(err(
            line,
            format!("`{key}` must be a boolean, found {}", other.kind()),
        )),
    }
}

impl ProtocolSpec {
    /// Parses the TOML-subset wire format. Unknown sections and keys are
    /// rejected with the offending line (`deny_unknown_fields`); the
    /// parsed spec is then [`validate`](Self::validate)d as a whole
    /// (those errors report line 0).
    pub fn parse(input: &str) -> Result<Self, SpecParseError> {
        let mut spec = ProtocolSpec::default();
        let mut section = Section::None;
        let mut seen_keys: BTreeSet<String> = BTreeSet::new();

        for (idx, raw) in input.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                // A `#` inside a quoted string would be a comment by this
                // rule; the writer escapes nothing, so keep `#` out of
                // rationales (validate rejects it).
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                seen_keys.clear();
                section = match name.trim() {
                    "field" => {
                        spec.fields.push(FieldSpec::default());
                        Section::Field
                    }
                    "lock" => {
                        spec.locks.push(LockSpec::default());
                        Section::Lock
                    }
                    other => return Err(err(lineno, format!("unknown array table `[[{other}]]`"))),
                };
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                seen_keys.clear();
                section = match name.trim() {
                    "protocol" => Section::Protocol,
                    "fences" => Section::Fences,
                    "hot_path" => Section::HotPath,
                    "lock_order" => Section::LockOrder,
                    other => return Err(err(lineno, format!("unknown table `[{other}]`"))),
                };
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(err(
                    lineno,
                    format!("expected `key = value`, found `{line}`"),
                ));
            };
            let key = line[..eq].trim().to_string();
            let value = parse_value(&line[eq + 1..], lineno)?;
            if !seen_keys.insert(key.clone()) {
                return Err(err(lineno, format!("duplicate key `{key}` in table")));
            }
            match section {
                Section::None => {
                    return Err(err(lineno, format!("key `{key}` outside any table")));
                }
                Section::Protocol => match key.as_str() {
                    "version" => match value {
                        Value::Int(v) if (0..=u32::MAX as i64).contains(&v) => {
                            spec.version = v as u32;
                        }
                        other => {
                            return Err(err(
                                lineno,
                                format!(
                                    "`version` must be a non-negative integer, found {}",
                                    other.kind()
                                ),
                            ))
                        }
                    },
                    other => {
                        return Err(err(lineno, format!("unknown key `{other}` in [protocol]")));
                    }
                },
                Section::Fences => match key.as_str() {
                    "allowed" => spec.fences_allowed = orderings(value, "allowed", lineno)?,
                    other => return Err(err(lineno, format!("unknown key `{other}` in [fences]"))),
                },
                Section::HotPath => match key.as_str() {
                    "roots" => spec.hot_path.roots = strings(value, "roots", lineno)?,
                    "amortized_receivers" => {
                        spec.hot_path.amortized_receivers =
                            strings(value, "amortized_receivers", lineno)?;
                    }
                    other => {
                        return Err(err(lineno, format!("unknown key `{other}` in [hot_path]")));
                    }
                },
                Section::LockOrder => match key.as_str() {
                    "classes" => spec.lock_order = strings(value, "classes", lineno)?,
                    other => {
                        return Err(err(
                            lineno,
                            format!("unknown key `{other}` in [lock_order]"),
                        ));
                    }
                },
                Section::Field => {
                    let f = spec.fields.last_mut().expect("section implies an entry");
                    match key.as_str() {
                        "owner" => f.owner = string(value, "owner", lineno)?,
                        "name" => f.name = string(value, "name", lineno)?,
                        "type" => f.atomic_type = string(value, "type", lineno)?,
                        "parametric" => f.parametric = boolean(value, "parametric", lineno)?,
                        "load" => f.load = orderings(value, "load", lineno)?,
                        "store" => f.store = orderings(value, "store", lineno)?,
                        "rmw" => f.rmw = orderings(value, "rmw", lineno)?,
                        "rmw_failure" => f.rmw_failure = orderings(value, "rmw_failure", lineno)?,
                        "rationale" => f.rationale = string(value, "rationale", lineno)?,
                        other => {
                            return Err(err(lineno, format!("unknown key `{other}` in [[field]]")));
                        }
                    }
                }
                Section::Lock => {
                    let l = spec.locks.last_mut().expect("section implies an entry");
                    match key.as_str() {
                        "owner" => l.owner = string(value, "owner", lineno)?,
                        "name" => l.name = string(value, "name", lineno)?,
                        "class" => l.class = string(value, "class", lineno)?,
                        "sweep_try_only" => {
                            l.sweep_try_only = boolean(value, "sweep_try_only", lineno)?;
                        }
                        "blocking_allowed" => {
                            l.blocking_allowed = strings(value, "blocking_allowed", lineno)?;
                        }
                        "rationale" => l.rationale = string(value, "rationale", lineno)?,
                        other => {
                            return Err(err(lineno, format!("unknown key `{other}` in [[lock]]")));
                        }
                    }
                }
            }
        }
        spec.validate().map_err(|message| err(0, message))?;
        Ok(spec)
    }

    /// Serializes to the canonical wire format; `parse` of the result
    /// reproduces the spec exactly (the round-trip proptest).
    pub fn to_config_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let list = |items: &[String]| -> String {
            let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
            format!("[{}]", quoted.join(", "))
        };
        let ords = |items: &[OrderingName]| -> String {
            let quoted: Vec<String> = items.iter().map(|o| format!("\"{o}\"")).collect();
            format!("[{}]", quoted.join(", "))
        };
        let _ = writeln!(out, "[protocol]");
        let _ = writeln!(out, "version = {}", self.version);
        let _ = writeln!(out, "\n[fences]");
        let _ = writeln!(out, "allowed = {}", ords(&self.fences_allowed));
        let _ = writeln!(out, "\n[lock_order]");
        let _ = writeln!(out, "classes = {}", list(&self.lock_order));
        let _ = writeln!(out, "\n[hot_path]");
        let _ = writeln!(out, "roots = {}", list(&self.hot_path.roots));
        let _ = writeln!(
            out,
            "amortized_receivers = {}",
            list(&self.hot_path.amortized_receivers)
        );
        for f in &self.fields {
            let _ = writeln!(out, "\n[[field]]");
            let _ = writeln!(out, "owner = \"{}\"", escape(&f.owner));
            let _ = writeln!(out, "name = \"{}\"", escape(&f.name));
            let _ = writeln!(out, "type = \"{}\"", escape(&f.atomic_type));
            if f.parametric {
                let _ = writeln!(out, "parametric = true");
            }
            if !f.load.is_empty() {
                let _ = writeln!(out, "load = {}", ords(&f.load));
            }
            if !f.store.is_empty() {
                let _ = writeln!(out, "store = {}", ords(&f.store));
            }
            if !f.rmw.is_empty() {
                let _ = writeln!(out, "rmw = {}", ords(&f.rmw));
            }
            if !f.rmw_failure.is_empty() {
                let _ = writeln!(out, "rmw_failure = {}", ords(&f.rmw_failure));
            }
            let _ = writeln!(out, "rationale = \"{}\"", escape(&f.rationale));
        }
        for l in &self.locks {
            let _ = writeln!(out, "\n[[lock]]");
            let _ = writeln!(out, "owner = \"{}\"", escape(&l.owner));
            let _ = writeln!(out, "name = \"{}\"", escape(&l.name));
            let _ = writeln!(out, "class = \"{}\"", escape(&l.class));
            if l.sweep_try_only {
                let _ = writeln!(out, "sweep_try_only = true");
            }
            if !l.blocking_allowed.is_empty() {
                let _ = writeln!(out, "blocking_allowed = {}", list(&l.blocking_allowed));
            }
            let _ = writeln!(out, "rationale = \"{}\"", escape(&l.rationale));
        }
        out
    }

    /// Whole-spec validation, mirroring `RtTuningConfig::validate`.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural invariant as prose.
    pub fn validate(&self) -> Result<(), String> {
        fn ident_ok(s: &str) -> bool {
            !s.is_empty()
                && s.chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        fn qualified_ok(s: &str) -> bool {
            match s.split_once("::") {
                Some((owner, name)) => ident_ok(owner) && ident_ok(name),
                None => false,
            }
        }
        fn no_dup_orderings(list: &[OrderingName], what: &str) -> Result<(), String> {
            let set: BTreeSet<_> = list.iter().collect();
            if set.len() != list.len() {
                return Err(format!("duplicate ordering in {what}"));
            }
            Ok(())
        }
        if self.version != 1 {
            return Err(format!("unsupported protocol version {}", self.version));
        }
        no_dup_orderings(&self.fences_allowed, "[fences].allowed")?;
        let mut classes = BTreeSet::new();
        for c in &self.lock_order {
            if !ident_ok(c) {
                return Err(format!("lock class `{c}` is not an identifier"));
            }
            if !classes.insert(c) {
                return Err(format!("duplicate lock class `{c}` in [lock_order]"));
            }
        }
        if self.hot_path.roots.is_empty() {
            return Err("[hot_path].roots must not be empty".to_string());
        }
        let mut roots = BTreeSet::new();
        for r in &self.hot_path.roots {
            if !qualified_ok(r) {
                return Err(format!(
                    "hot-path root `{r}` is not of the form `Owner::fn`"
                ));
            }
            if !roots.insert(r) {
                return Err(format!("duplicate hot-path root `{r}`"));
            }
        }
        for a in &self.hot_path.amortized_receivers {
            if !ident_ok(a) {
                return Err(format!("amortized receiver `{a}` is not an identifier"));
            }
        }
        let mut field_keys = BTreeSet::new();
        for f in &self.fields {
            let key = format!("{}::{}", f.owner, f.name);
            if !ident_ok(&f.owner) || !ident_ok(&f.name) {
                return Err(format!(
                    "field entry `{key}` has a non-identifier owner or name"
                ));
            }
            if !field_keys.insert(key.clone()) {
                return Err(format!("duplicate field entry `{key}`"));
            }
            if f.atomic_type.is_empty() {
                return Err(format!("field `{key}` is missing `type`"));
            }
            if f.load.is_empty() && f.store.is_empty() && f.rmw.is_empty() {
                return Err(format!("field `{key}` allows no operation at all"));
            }
            if !f.rmw_failure.is_empty() && f.rmw.is_empty() {
                return Err(format!("field `{key}` has `rmw_failure` without `rmw`"));
            }
            no_dup_orderings(&f.load, &format!("`{key}` load"))?;
            no_dup_orderings(&f.store, &format!("`{key}` store"))?;
            no_dup_orderings(&f.rmw, &format!("`{key}` rmw"))?;
            no_dup_orderings(&f.rmw_failure, &format!("`{key}` rmw_failure"))?;
            if f.rationale.is_empty() {
                return Err(format!("field `{key}` is missing its rationale"));
            }
            if f.rationale.contains('#') {
                return Err(format!("field `{key}` rationale must not contain `#`"));
            }
        }
        let mut lock_keys = BTreeSet::new();
        for l in &self.locks {
            let key = format!("{}::{}", l.owner, l.name);
            if !ident_ok(&l.owner) || !ident_ok(&l.name) {
                return Err(format!(
                    "lock entry `{key}` has a non-identifier owner or name"
                ));
            }
            if !lock_keys.insert(key.clone()) {
                return Err(format!("duplicate lock entry `{key}`"));
            }
            if !self.lock_order.iter().any(|c| c == &l.class) {
                return Err(format!(
                    "lock `{key}` has class `{}` not listed in [lock_order]",
                    l.class
                ));
            }
            for b in &l.blocking_allowed {
                if !qualified_ok(b) {
                    return Err(format!(
                        "lock `{key}` blocking_allowed entry `{b}` is not of the form `Owner::fn`"
                    ));
                }
            }
            if l.rationale.is_empty() {
                return Err(format!("lock `{key}` is missing its rationale"));
            }
            if l.rationale.contains('#') {
                return Err(format!("lock `{key}` rationale must not contain `#`"));
            }
        }
        Ok(())
    }

    /// Looks up a field spec by `(owner, name)`.
    pub fn field(&self, owner: &str, name: &str) -> Option<&FieldSpec> {
        self.fields
            .iter()
            .find(|f| f.owner == owner && f.name == name)
    }

    /// Looks up a lock spec by `(owner, name)`.
    pub fn lock(&self, owner: &str, name: &str) -> Option<&LockSpec> {
        self.locks
            .iter()
            .find(|l| l.owner == owner && l.name == name)
    }
}
