//! CLI for `latr-lint`.
//!
//! Usage:
//!   latr-lint --workspace              # locate the repo and lint crates/core/src/rt
//!   latr-lint --root DIR --protocol F  # lint an arbitrary tree against a spec
//!
//! Exits 0 when the code matches PROTOCOL.toml, 1 on any diagnostic,
//! 2 on usage or I/O errors. Build with `--features reference` to run
//! the coverage accounting under the reference-backend cfg set.

use std::path::PathBuf;
use std::process::ExitCode;

use latr_lint::{analyze_dir, CfgEnv, ProtocolSpec};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut protocol: Option<PathBuf> = None;
    let mut display_prefix = String::new();
    let mut workspace = false;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--protocol" => match it.next() {
                Some(v) => protocol = Some(PathBuf::from(v)),
                None => return usage("--protocol needs a value"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                return usage("");
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if workspace {
        let Some(ws) = find_workspace_root() else {
            eprintln!("latr-lint: no workspace Cargo.toml found above the current directory");
            return ExitCode::from(2);
        };
        let rt = ws.join("crates/core/src/rt");
        display_prefix = "crates/core/src/rt/".to_string();
        protocol.get_or_insert_with(|| rt.join("PROTOCOL.toml"));
        root = Some(rt);
    }
    let (Some(root), Some(protocol)) = (root, protocol) else {
        return usage("need --workspace, or both --root and --protocol");
    };

    let spec_text = match std::fs::read_to_string(&protocol) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("latr-lint: cannot read {}: {e}", protocol.display());
            return ExitCode::from(2);
        }
    };
    let spec = match ProtocolSpec::parse(&spec_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("latr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // The only effect of the `reference` feature: the cfg set used for
    // covered-field accounting, compared across runs by the parity test.
    let env = if cfg!(feature = "reference") {
        CfgEnv::with_features(&["reference"])
    } else {
        CfgEnv::default()
    };

    let report = match analyze_dir(&spec, &root, &display_prefix, &env) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("latr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
    }
    if !quiet {
        eprintln!(
            "latr-lint: {} files, {} fns, {} atomic ops, {}/{} spec fields covered, {} diagnostics",
            report.files,
            report.fns,
            report.atomic_ops,
            report.covered_fields.len(),
            spec.fields.len(),
            report.diagnostics.len()
        );
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("latr-lint: {err}");
    }
    eprintln!(
        "usage: latr-lint --workspace [--quiet]\n       latr-lint --root DIR --protocol FILE [--quiet]"
    );
    ExitCode::from(2)
}
