//! A lightweight item extractor over the token stream.
//!
//! Not a Rust parser — a single linear pass that recognizes the item
//! shapes the checks need (structs + typed fields, fns + attributes +
//! body spans, `use` declarations, `mod`/`impl` scope context) and
//! ignores everything else. rustc is the real syntax gate; this pass
//! only has to be *sound on code rustc accepts*, and conservative where
//! it cannot tell (unresolvable constructs surface as diagnostics in
//! the checks, never as silent passes).

use crate::lexer::{Token, TokenKind};

/// A struct field: name, type tokens, accumulated cfg conditions.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// The field's type as lexed tokens (texts only).
    pub ty: Vec<String>,
    /// cfg conditions guarding the field (own + enclosing scopes).
    pub cfgs: Vec<String>,
    /// 1-based declaration line.
    pub line: u32,
}

impl FieldDef {
    /// Whether the declared type mentions an atomic (`AtomicU64`,
    /// `AtomicCpuMask`, ... — anything `Atomic*`).
    pub fn is_atomic(&self) -> bool {
        self.ty.iter().any(|t| t.starts_with("Atomic"))
    }

    /// Whether the declared type mentions a `Mutex`.
    pub fn is_mutex(&self) -> bool {
        self.ty.iter().any(|t| t == "Mutex")
    }
}

/// A struct definition with its fields.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Named fields (tuple structs record none).
    pub fields: Vec<FieldDef>,
    /// cfg conditions guarding the struct.
    pub cfgs: Vec<String>,
    /// Whether the struct lives under `#[cfg(test)]`.
    pub in_test: bool,
    /// 1-based declaration line.
    pub line: u32,
}

/// A function definition (or bodyless declaration).
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Innermost `impl` self-type, if any.
    pub owner: Option<String>,
    /// Canonicalized attribute texts (`latr::hot_path`, `cfg(test)`, ...).
    pub attrs: Vec<String>,
    /// cfg conditions guarding the fn (own + enclosing scopes).
    pub cfgs: Vec<String>,
    /// Whether the fn lives under `#[cfg(test)]` / `#[test]`.
    pub in_test: bool,
    /// 1-based declaration line.
    pub line: u32,
    /// Token index range of the body, *exclusive* of the braces.
    /// Empty for bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
}

impl FnDef {
    /// Whether the fn carries the given canonicalized attribute.
    pub fn has_attr(&self, attr: &str) -> bool {
        self.attrs.iter().any(|a| a == attr)
    }

    /// `Owner::name`, or just `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `use` declaration (item- or statement-position).
#[derive(Clone, Debug)]
pub struct UseDef {
    /// Canonicalized path text (no spaces), e.g. `std::sync::atomic::{AtomicBool,Ordering}`.
    pub text: String,
    /// 1-based line.
    pub line: u32,
}

/// Everything extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Function definitions.
    pub fns: Vec<FnDef>,
    /// `use` declarations, including ones inside fn bodies.
    pub uses: Vec<UseDef>,
}

/// Joins tokens into a canonical spaceless string (strings re-quoted),
/// used for attribute and use-path texts.
pub fn canonical(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        match t.kind {
            TokenKind::Str => {
                out.push('"');
                out.push_str(&t.text);
                out.push('"');
            }
            TokenKind::Lifetime => {
                out.push('\'');
                out.push_str(&t.text);
            }
            _ => out.push_str(&t.text),
        }
    }
    out
}

/// Skips a balanced delimiter group starting at `open` (which must index
/// the opening delimiter); returns the index *after* the matching close.
pub fn skip_group(tokens: &[Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct(open_c) {
            depth += 1;
        } else if tokens[i].is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Skips a generics group `<...>` starting at `open` if present.
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    if i < tokens.len() && tokens[i].is_punct('<') {
        let mut depth = 0isize;
        let mut j = i;
        while j < tokens.len() {
            if tokens[j].is_punct('<') {
                depth += 1;
            } else if tokens[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        return tokens.len();
    }
    i
}

fn cfg_of(attr: &str) -> Option<String> {
    attr.strip_prefix("cfg(")
        .and_then(|s| s.strip_suffix(')'))
        .map(str::to_string)
}

struct Scope {
    /// Brace depth once this scope's `{` has been processed.
    depth: usize,
    owner: Option<String>,
    cfgs: Vec<String>,
    test: bool,
}

/// Parses one file's tokens into items.
pub fn parse_items(tokens: &[Token]) -> Parsed {
    let mut out = Parsed::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut i = 0usize;

    let item_position = |tokens: &[Token], i: usize| -> bool {
        if i == 0 {
            return true;
        }
        let prev = &tokens[i - 1];
        prev.is_punct(';')
            || prev.is_punct('{')
            || prev.is_punct('}')
            || prev.is_punct(']')
            || prev.is_punct(',') // `,` for enum-variant-struct edge; harmless
            || (prev.kind == TokenKind::Ident
                && matches!(
                    prev.text.as_str(),
                    "pub" | "unsafe" | "async" | "const" | "extern" | "default"
                ))
            || prev.kind == TokenKind::Str
    };

    while i < tokens.len() {
        let tok = &tokens[i];

        // Attributes: `#[...]` recorded, `#![...]` skipped.
        if tok.is_punct('#') {
            if i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
                let end = skip_group(tokens, i + 1, '[', ']');
                pending_attrs.push(canonical(&tokens[i + 2..end - 1]));
                i = end;
                continue;
            }
            if i + 2 < tokens.len() && tokens[i + 1].is_punct('!') && tokens[i + 2].is_punct('[') {
                i = skip_group(tokens, i + 2, '[', ']');
                continue;
            }
            i += 1;
            continue;
        }

        if tok.is_punct('{') {
            depth += 1;
            i += 1;
            pending_attrs.clear();
            continue;
        }
        if tok.is_punct('}') {
            while scopes.last().is_some_and(|s| s.depth == depth) {
                scopes.pop();
            }
            depth = depth.saturating_sub(1);
            i += 1;
            pending_attrs.clear();
            continue;
        }

        if tok.kind == TokenKind::Ident {
            let scope_cfgs = |scopes: &[Scope]| -> Vec<String> {
                scopes.iter().flat_map(|s| s.cfgs.iter().cloned()).collect()
            };
            let scope_test = |scopes: &[Scope]| scopes.iter().any(|s| s.test);
            match tok.text.as_str() {
                // `pub`, `pub(crate)` etc. keep pending attrs alive.
                "pub" => {
                    i += 1;
                    if i < tokens.len() && tokens[i].is_punct('(') {
                        i = skip_group(tokens, i, '(', ')');
                    }
                    continue;
                }
                "unsafe" | "async" | "const" | "extern" | "default" => {
                    i += 1;
                    continue;
                }
                "struct" if item_position(tokens, i) => {
                    let (s, next) = parse_struct(
                        tokens,
                        i,
                        &pending_attrs,
                        &scope_cfgs(&scopes),
                        scope_test(&scopes),
                    );
                    if let Some(s) = s {
                        out.structs.push(s);
                    }
                    pending_attrs.clear();
                    i = next;
                    continue;
                }
                "mod" if item_position(tokens, i) => {
                    let cfgs: Vec<String> =
                        pending_attrs.iter().filter_map(|a| cfg_of(a)).collect();
                    let test = scope_test(&scopes) || cfgs.iter().any(|c| c == "test");
                    let mut all_cfgs = scope_cfgs(&scopes);
                    all_cfgs.extend(cfgs);
                    pending_attrs.clear();
                    i += 1; // past `mod`
                    if i < tokens.len() && tokens[i].kind == TokenKind::Ident {
                        i += 1; // past the name
                    }
                    if i < tokens.len() && tokens[i].is_punct('{') {
                        scopes.push(Scope {
                            depth: depth + 1,
                            owner: None,
                            cfgs: all_cfgs,
                            test,
                        });
                        // The `{` itself is processed on the next iteration.
                    }
                    continue;
                }
                "impl" if item_position(tokens, i) => {
                    let cfgs: Vec<String> =
                        pending_attrs.iter().filter_map(|a| cfg_of(a)).collect();
                    let test = scope_test(&scopes) || cfgs.iter().any(|c| c == "test");
                    let mut all_cfgs = scope_cfgs(&scopes);
                    all_cfgs.extend(cfgs);
                    pending_attrs.clear();
                    let mut j = skip_generics(tokens, i + 1);
                    // Header runs to the `{` at angle depth 0; the self type
                    // is the last top-level ident after the last `for` (or
                    // of the whole header), stopping at `where`.
                    let mut angle = 0isize;
                    let mut self_name: Option<String> = None;
                    while j < tokens.len() {
                        let t = &tokens[j];
                        if t.is_punct('<') {
                            angle += 1;
                        } else if t.is_punct('>') {
                            angle -= 1;
                        } else if angle == 0 {
                            if t.is_punct('{') {
                                break;
                            }
                            if t.is_ident("where") {
                                // Self type is settled; skip to the `{`.
                                while j < tokens.len() && !tokens[j].is_punct('{') {
                                    j += 1;
                                }
                                break;
                            }
                            if t.is_ident("for") {
                                self_name = None;
                            } else if t.kind == TokenKind::Ident {
                                self_name = Some(t.text.clone());
                            }
                        }
                        j += 1;
                    }
                    if j < tokens.len() && tokens[j].is_punct('{') {
                        scopes.push(Scope {
                            depth: depth + 1,
                            owner: self_name,
                            cfgs: all_cfgs,
                            test,
                        });
                    }
                    i = j;
                    continue;
                }
                "fn" if item_position(tokens, i) => {
                    let (f, next) = parse_fn(
                        tokens,
                        i,
                        &pending_attrs,
                        scopes.iter().rev().find_map(|s| s.owner.clone()),
                        &scope_cfgs(&scopes),
                        scope_test(&scopes),
                    );
                    if let Some(f) = f {
                        out.fns.push(f);
                    }
                    pending_attrs.clear();
                    i = next;
                    continue;
                }
                "use" if item_position(tokens, i) => {
                    let start = i + 1;
                    let mut j = start;
                    while j < tokens.len() && !tokens[j].is_punct(';') {
                        j += 1;
                    }
                    out.uses.push(UseDef {
                        text: canonical(&tokens[start..j]),
                        line: tok.line,
                    });
                    pending_attrs.clear();
                    i = j + 1;
                    continue;
                }
                _ => {}
            }
        }

        pending_attrs.clear();
        i += 1;
    }
    out
}

fn parse_struct(
    tokens: &[Token],
    kw: usize,
    attrs: &[String],
    scope_cfgs: &[String],
    scope_test: bool,
) -> (Option<StructDef>, usize) {
    let mut i = kw + 1;
    let Some(name_tok) = tokens.get(i) else {
        return (None, i);
    };
    if name_tok.kind != TokenKind::Ident {
        return (None, i);
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    i = skip_generics(tokens, i + 1);
    // Skip a `where` clause, stopping at `{` or `;`.
    while i < tokens.len() && !tokens[i].is_punct('{') && !tokens[i].is_punct(';') {
        if tokens[i].is_punct('(') {
            // Tuple struct: no named fields to record.
            i = skip_group(tokens, i, '(', ')');
            continue;
        }
        i += 1;
    }
    let mut own_cfgs: Vec<String> = scope_cfgs.to_vec();
    own_cfgs.extend(attrs.iter().filter_map(|a| cfg_of(a)));
    let in_test = scope_test || own_cfgs.iter().any(|c| c == "test");
    let mut def = StructDef {
        name,
        fields: Vec::new(),
        cfgs: own_cfgs.clone(),
        in_test,
        line,
    };
    if i >= tokens.len() || tokens[i].is_punct(';') {
        return (Some(def), i + 1);
    }
    // Named fields between the braces.
    let end = skip_group(tokens, i, '{', '}');
    let mut j = i + 1;
    let mut field_attrs: Vec<String> = Vec::new();
    while j < end - 1 {
        let t = &tokens[j];
        if t.is_punct('#') && j + 1 < end && tokens[j + 1].is_punct('[') {
            let a_end = skip_group(tokens, j + 1, '[', ']');
            field_attrs.push(canonical(&tokens[j + 2..a_end - 1]));
            j = a_end;
            continue;
        }
        if t.is_ident("pub") {
            j += 1;
            if j < end && tokens[j].is_punct('(') {
                j = skip_group(tokens, j, '(', ')');
            }
            continue;
        }
        if t.kind == TokenKind::Ident
            && j + 1 < end
            && tokens[j + 1].is_punct(':')
            && !(j + 2 < end && tokens[j + 2].is_punct(':'))
        {
            let fname = t.text.clone();
            let fline = t.line;
            let mut k = j + 2;
            let mut ty = Vec::new();
            let mut nest = 0isize;
            while k < end - 1 {
                let tt = &tokens[k];
                if tt.is_punct('<') || tt.is_punct('(') || tt.is_punct('[') {
                    nest += 1;
                } else if tt.is_punct('>') || tt.is_punct(')') || tt.is_punct(']') {
                    nest -= 1;
                } else if tt.is_punct(',') && nest == 0 {
                    break;
                }
                ty.push(tt.text.clone());
                k += 1;
            }
            let mut cfgs = own_cfgs.clone();
            cfgs.extend(field_attrs.iter().filter_map(|a| cfg_of(a)));
            def.fields.push(FieldDef {
                name: fname,
                ty,
                cfgs,
                line: fline,
            });
            field_attrs.clear();
            j = k + 1;
            continue;
        }
        j += 1;
    }
    (Some(def), end)
}

fn parse_fn(
    tokens: &[Token],
    kw: usize,
    attrs: &[String],
    owner: Option<String>,
    scope_cfgs: &[String],
    scope_test: bool,
) -> (Option<FnDef>, usize) {
    let mut i = kw + 1;
    let Some(name_tok) = tokens.get(i) else {
        return (None, i);
    };
    if name_tok.kind != TokenKind::Ident {
        return (None, i);
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    i = skip_generics(tokens, i + 1);
    if i < tokens.len() && tokens[i].is_punct('(') {
        i = skip_group(tokens, i, '(', ')');
    }
    // Return type / where clause: find `{` or `;` outside nesting.
    let mut nest = 0isize;
    while i < tokens.len() {
        let t = &tokens[i];
        // `->` and `=>` lex as two puncts; their `>` is not a closer.
        if t.is_punct('-') || t.is_punct('=') {
            if i + 1 < tokens.len() && tokens[i + 1].is_punct('>') {
                i += 2;
                continue;
            }
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            nest -= 1;
        } else if nest == 0 && (t.is_punct('{') || t.is_punct(';')) {
            break;
        }
        i += 1;
    }
    let mut cfgs: Vec<String> = scope_cfgs.to_vec();
    cfgs.extend(attrs.iter().filter_map(|a| cfg_of(a)));
    let in_test =
        scope_test || cfgs.iter().any(|c| c == "test") || attrs.iter().any(|a| a == "test");
    let body = if i < tokens.len() && tokens[i].is_punct('{') {
        let end = skip_group(tokens, i, '{', '}');
        (i + 1)..(end - 1)
    } else {
        i..i
    };
    let def = FnDef {
        name,
        owner,
        attrs: attrs.to_vec(),
        cfgs,
        in_test,
        line,
        body,
    };
    // Return the index of the body `{` (or past the `;`) so the main
    // loop's depth/scope bookkeeping sees the brace itself and walks
    // *into* the body (nested `use` decls etc. still get extracted).
    let next = if def.body.is_empty() { i + 1 } else { i };
    (Some(def), next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn extracts_struct_fields_with_types() {
        let toks = lex("pub struct Slot { pub start: AtomicU64, cpus: AtomicCpuMask, n: usize }");
        let p = parse_items(&toks);
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "Slot");
        assert_eq!(s.fields.len(), 3);
        assert!(s.fields[0].is_atomic());
        assert!(s.fields[1].is_atomic());
        assert!(!s.fields[2].is_atomic());
    }

    #[test]
    fn attributes_and_impl_owner() {
        let src = r#"
            impl RtRegistry {
                #[latr::hot_path]
                pub fn sweep_into(&self, core: usize) { self.x(); }
                fn other(&self) {}
            }
            impl Drop for SweepGuard<'_> {
                fn drop(&mut self) {}
            }
        "#;
        let p = parse_items(&lex(src));
        assert_eq!(p.fns.len(), 3);
        assert!(p.fns[0].has_attr("latr::hot_path"));
        assert_eq!(p.fns[0].qualified(), "RtRegistry::sweep_into");
        assert_eq!(p.fns[1].qualified(), "RtRegistry::other");
        assert_eq!(p.fns[2].qualified(), "SweepGuard::drop");
    }

    #[test]
    fn test_mods_and_nested_uses() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    use std::sync::atomic::{AtomicBool, Ordering};
                    let _ = AtomicBool::new(false);
                }
            }
        "#;
        let p = parse_items(&lex(src));
        assert!(p.fns.iter().all(|f| f.in_test));
        assert_eq!(p.uses.len(), 1);
        assert!(p.uses[0].text.starts_with("std::sync::atomic"));
    }

    #[test]
    fn cfg_accumulates_from_scopes() {
        let src = r#"
            #[cfg(loom)]
            impl FrontierWatchdog {
                pub fn now_ns(&self) -> u64 { self.clock_ns.load(Ordering::Acquire) }
            }
        "#;
        let p = parse_items(&lex(src));
        assert_eq!(p.fns[0].cfgs, vec!["loom".to_string()]);
    }

    #[test]
    fn type_position_impl_is_not_a_scope() {
        let src = "fn f() -> impl Iterator<Item = u64> { std::iter::empty() } fn g() {}";
        let p = parse_items(&lex(src));
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].owner, None);
    }
}
