//! The four protocol checks.
//!
//! 1. **atomic-ordering** — every atomic load/store/RMW on a field
//!    declared in PROTOCOL.toml must use one of its allowed `Ordering`s;
//!    atomics missing from the spec (and spec entries with no matching
//!    code) are errors, so a clean run proves full coverage both ways.
//! 2. **hot-path-alloc** — a call-graph walk from `#[latr::hot_path]`
//!    roots flags reachable heap allocation; `#[latr::alloc_ok]` marks
//!    sanctioned cold-path boundaries the walk does not enter.
//! 3. **lock-discipline** — `sweep_try_only` locks may only be taken via
//!    `try_lock` on sweep-reachable paths (minus the spec's
//!    `blocking_allowed` escape hatch), and per-function acquisition
//!    sequences must respect `[lock_order].classes`.
//! 4. **shim-hygiene** — `std::sync::atomic` / `std::sync::Mutex` never
//!    appear in rt code outside `rt/sync.rs`; everything routes through
//!    the loom shim.
//!
//! The analysis is token-level and *conservative*: receivers it cannot
//! attribute surface as diagnostics rather than silent passes. Checks
//! run over every cfg branch (the protocol holds in every build); the
//! cfg environment only affects the per-run covered-field accounting
//! that the reference-parity test compares.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::path::Path;

use crate::lexer::{lex, Token, TokenKind};
use crate::parser::{parse_items, FieldDef, FnDef, Parsed};
use crate::protocol::{OrderingName, ProtocolSpec};

/// Which check produced a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Check {
    /// Atomic-ordering discipline.
    AtomicOrdering,
    /// Hot-path allocation freedom.
    HotPathAlloc,
    /// Lock discipline.
    LockDiscipline,
    /// Loom-shim hygiene.
    ShimHygiene,
    /// Spec/code coverage mismatches.
    SpecCoverage,
}

impl Check {
    /// Stable kebab-case slug used in rendered diagnostics.
    pub fn slug(self) -> &'static str {
        match self {
            Check::AtomicOrdering => "atomic-ordering",
            Check::HotPathAlloc => "hot-path-alloc",
            Check::LockDiscipline => "lock-discipline",
            Check::ShimHygiene => "shim-hygiene",
            Check::SpecCoverage => "spec-coverage",
        }
    }
}

/// One finding. Ordered by (file, line, check, message) so reports are
/// deterministic and snapshot-comparable.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Display path of the offending file (`PROTOCOL.toml` for
    /// spec-side coverage errors).
    pub file: String,
    /// 1-based line (0 when the finding is not line-anchored).
    pub line: u32,
    /// The producing check.
    pub check: Check,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}] {}:{}: {}",
            self.check.slug(),
            self.file,
            self.line,
            self.message
        )
    }
}

/// The cfg environment of one analysis run. Checks ignore it; coverage
/// accounting uses it so two runs (default vs `--features reference`)
/// can be compared field-for-field.
#[derive(Clone, Debug, Default)]
pub struct CfgEnv {
    /// Enabled `feature = "..."` names.
    pub features: BTreeSet<String>,
    /// Enabled bare cfg flags (`loom`, ...).
    pub flags: BTreeSet<String>,
}

impl CfgEnv {
    /// An env with the given features enabled.
    pub fn with_features(features: &[&str]) -> Self {
        CfgEnv {
            features: features.iter().map(|s| s.to_string()).collect(),
            flags: BTreeSet::new(),
        }
    }

    /// Evaluates a canonicalized cfg expression (`feature="x"`,
    /// `not(loom)`, `any(a,b)`, `all(a,b)`); unknown predicates are
    /// false.
    pub fn eval(&self, expr: &str) -> bool {
        let (v, rest) = self.eval_expr(expr);
        if rest.trim().is_empty() {
            v
        } else {
            false
        }
    }

    fn eval_expr<'a>(&self, s: &'a str) -> (bool, &'a str) {
        let s = s.trim_start_matches(',');
        for (prefix, is_not, is_any) in [
            ("not(", true, false),
            ("any(", false, true),
            ("all(", false, false),
        ] {
            if let Some(mut rest) = s.strip_prefix(prefix) {
                let mut acc = !is_any;
                loop {
                    if let Some(r) = rest.strip_prefix(')') {
                        let v = if is_not { !acc } else { acc };
                        return (v, r);
                    }
                    if rest.is_empty() {
                        return (false, rest);
                    }
                    let (v, r) = self.eval_expr(rest);
                    if is_any {
                        acc = acc || v;
                    } else {
                        acc = acc && v;
                    }
                    rest = r.trim_start_matches(',');
                }
            }
        }
        let end = s
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(s.len());
        let (name, rest) = s.split_at(end);
        if let Some(val_rest) = rest.strip_prefix("=\"") {
            if let Some(close) = val_rest.find('"') {
                let value = &val_rest[..close];
                let after = &val_rest[close + 1..];
                let v = name == "feature" && self.features.contains(value);
                return (v, after);
            }
            return (false, "");
        }
        (self.flags.contains(name), rest)
    }
}

/// The result of one analysis run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// `Owner::field` keys with at least one atomic op whose cfg guards
    /// evaluate true under this run's [`CfgEnv`].
    pub covered_fields: BTreeSet<String>,
    /// Number of `.rs` files analyzed.
    pub files: usize,
    /// Number of (non-test) functions analyzed.
    pub fns: usize,
    /// Number of atomic operations attributed and checked.
    pub atomic_ops: usize,
}

/// Files exempt from hygiene and completeness: the shim itself.
const EXEMPT_FILES: &[&str] = &["sync.rs"];

/// Wrapper types to skip when resolving a field's referenced struct.
const TYPE_WRAPPERS: &[&str] = &["CachePadded"];

/// Methods treated as amortized container growth in hot code.
const AMORTIZED_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
    "reserve",
    "resize",
    "entry",
    "or_insert",
    "or_insert_with",
];

/// Methods treated as hard allocation when called in hot code.
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect"];

struct SrcFile {
    rel: String,
    tokens: Vec<Token>,
    parsed: Parsed,
    exempt: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum OpKind {
    Load,
    Store,
    Rmw,
    CmpXchg,
    FetchUpdate,
    MaskLoad,
    MaskStore,
    MaskNoOrder,
}

fn op_kind(method: &str) -> Option<OpKind> {
    Some(match method {
        "load" => OpKind::Load,
        "store" => OpKind::Store,
        "swap" | "fetch_add" | "fetch_sub" | "fetch_and" | "fetch_or" | "fetch_xor"
        | "fetch_nand" | "fetch_max" | "fetch_min" => OpKind::Rmw,
        "compare_exchange" | "compare_exchange_weak" => OpKind::CmpXchg,
        "fetch_update" => OpKind::FetchUpdate,
        "test" | "load_words" | "is_empty" | "count" => OpKind::MaskLoad,
        "store_words" => OpKind::MaskStore,
        "set_bit" | "set_returning" | "clear" | "take_words" => OpKind::MaskNoOrder,
        _ => return None,
    })
}

#[derive(Clone, Debug)]
enum Binding {
    /// Alias to a value of this struct type (loop var over `[Slot]`, ...).
    Struct(String),
    /// Alias to one of these atomic fields (a `let` over an if/else can
    /// produce several candidates; an op must be legal for all of them).
    Fields(Vec<(String, String)>),
}

/// The analyzer: parsed files plus the spec.
pub struct Analyzer<'a> {
    spec: &'a ProtocolSpec,
    files: Vec<SrcFile>,
    /// struct name -> (file idx, struct idx)
    structs: HashMap<String, (usize, usize)>,
    /// global fn list as (file idx, fn idx), non-test only
    fns: Vec<(usize, usize)>,
    /// fn name -> global fn indices
    by_name: HashMap<String, Vec<usize>>,
}

impl<'a> Analyzer<'a> {
    /// Builds an analyzer over `(display_path, source)` pairs.
    pub fn new(spec: &'a ProtocolSpec, sources: Vec<(String, String)>) -> Self {
        let mut files = Vec::new();
        for (rel, src) in sources {
            let tokens = lex(&src);
            let parsed = parse_items(&tokens);
            let exempt = EXEMPT_FILES.iter().any(|e| {
                rel.ends_with(e) && rel[..rel.len() - e.len()].ends_with('/') || rel == *e
            });
            files.push(SrcFile {
                rel,
                tokens,
                parsed,
                exempt,
            });
        }
        let mut structs = HashMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (si, s) in f.parsed.structs.iter().enumerate() {
                structs.entry(s.name.clone()).or_insert((fi, si));
            }
        }
        let mut fns = Vec::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (ni, d) in f.parsed.fns.iter().enumerate() {
                if d.in_test {
                    continue;
                }
                by_name.entry(d.name.clone()).or_default().push(fns.len());
                fns.push((fi, ni));
            }
        }
        Analyzer {
            spec,
            files,
            structs,
            fns,
            by_name,
        }
    }

    fn fn_def(&self, g: usize) -> &FnDef {
        let (fi, ni) = self.fns[g];
        &self.files[fi].parsed.fns[ni]
    }

    fn fn_file(&self, g: usize) -> &SrcFile {
        &self.files[self.fns[g].0]
    }

    fn struct_field(&self, owner: &str, name: &str) -> Option<&FieldDef> {
        let &(fi, si) = self.structs.get(owner)?;
        self.files[fi].parsed.structs[si]
            .fields
            .iter()
            .find(|f| f.name == name)
    }

    fn ty_struct_ref(&self, ty: &[String]) -> Option<String> {
        ty.iter()
            .find(|t| !TYPE_WRAPPERS.contains(&t.as_str()) && self.structs.contains_key(t.as_str()))
            .cloned()
    }

    /// Walks `segs` as successive field accesses starting at struct
    /// `start`; returns the final `(owner, field)` if every hop exists.
    fn walk_fields(&self, start: &str, segs: &[String]) -> Option<(String, String)> {
        let mut cur = start.to_string();
        for (k, seg) in segs.iter().enumerate() {
            let fd = self.struct_field(&cur, seg)?;
            if k + 1 == segs.len() {
                return Some((cur, seg.clone()));
            }
            cur = self.ty_struct_ref(&fd.ty)?;
        }
        None
    }

    /// Collects the dotted receiver chain ending just before the `.` at
    /// `dot`, e.g. `self.slots[idx].active` -> `[self, slots, active]`.
    fn collect_receiver(tokens: &[Token], dot: usize) -> Option<Vec<String>> {
        let mut segs: Vec<String> = Vec::new();
        let mut j = dot.checked_sub(1)?;
        loop {
            // Skip a trailing index group `[...]` backwards.
            if tokens[j].is_punct(']') {
                let mut depth = 0isize;
                loop {
                    if tokens[j].is_punct(']') {
                        depth += 1;
                    } else if tokens[j].is_punct('[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j = j.checked_sub(1)?;
                }
                j = j.checked_sub(1)?;
                continue;
            }
            if tokens[j].kind != TokenKind::Ident {
                return None;
            }
            segs.push(tokens[j].text.clone());
            if tokens[j].text == "self" {
                break;
            }
            match j.checked_sub(2) {
                Some(p) if tokens[j - 1].is_punct('.') => j = p,
                _ => break,
            }
        }
        segs.reverse();
        Some(segs)
    }

    /// Resolves a receiver chain to candidate fields (empty = unknown).
    fn resolve_chain(
        &self,
        owner: Option<&str>,
        aliases: &HashMap<String, Binding>,
        segs: &[String],
    ) -> Vec<(String, String)> {
        if segs.is_empty() {
            return Vec::new();
        }
        if segs[0] == "self" {
            if segs.len() < 2 {
                return Vec::new();
            }
            let Some(owner) = owner else {
                return Vec::new();
            };
            return self.walk_fields(owner, &segs[1..]).into_iter().collect();
        }
        match aliases.get(&segs[0]) {
            Some(Binding::Struct(s)) if segs.len() >= 2 => {
                self.walk_fields(s, &segs[1..]).into_iter().collect()
            }
            Some(Binding::Fields(f)) if segs.len() == 1 => f.clone(),
            _ => Vec::new(),
        }
    }

    /// Finds `self.<field-chain>` references in a token range and
    /// resolves each: atomic fields land in `atomics`, a trailing
    /// struct-typed field sets `struct_ref` (used for loop/let aliases).
    fn scan_self_chains(
        &self,
        owner: Option<&str>,
        tokens: &[Token],
        range: std::ops::Range<usize>,
        atomics: &mut Vec<(String, String)>,
        struct_ref: &mut Option<String>,
    ) {
        let Some(owner) = owner else { return };
        let mut i = range.start;
        while i < range.end {
            if tokens[i].is_ident("self") {
                let mut cur = owner.to_string();
                let mut j = i + 1;
                let mut last_was_field = false;
                while j + 1 < range.end && tokens[j].is_punct('.') {
                    let seg = &tokens[j + 1];
                    if seg.kind != TokenKind::Ident {
                        break;
                    }
                    // A segment followed by `(` is a method call, not a
                    // field hop; the chain's value is then unknowable —
                    // except for iteration adapters, which still yield
                    // the collection's element type (`for slot in
                    // self.slots.iter()` binds `slot: &Slot`).
                    if j + 2 < range.end && tokens[j + 2].is_punct('(') {
                        const ITER_TRANSPARENT: &[&str] = &[
                            "iter",
                            "iter_mut",
                            "into_iter",
                            "enumerate",
                            "rev",
                            "zip",
                            "take",
                            "skip",
                        ];
                        if ITER_TRANSPARENT.contains(&seg.text.as_str()) {
                            j = crate::parser::skip_group(tokens, j + 2, '(', ')');
                            continue;
                        }
                        last_was_field = false;
                        break;
                    }
                    let Some(fd) = self.struct_field(&cur, &seg.text) else {
                        last_was_field = false;
                        break;
                    };
                    if fd.is_atomic() {
                        atomics.push((cur.clone(), seg.text.clone()));
                        last_was_field = false;
                        break;
                    }
                    match self.ty_struct_ref(&fd.ty) {
                        Some(s) => {
                            cur = s;
                            last_was_field = true;
                        }
                        None => {
                            last_was_field = false;
                            break;
                        }
                    }
                    j += 2;
                    // Skip index groups between hops.
                    while j < range.end && tokens[j].is_punct('[') {
                        let mut depth = 0isize;
                        while j < range.end {
                            if tokens[j].is_punct('[') {
                                depth += 1;
                            } else if tokens[j].is_punct(']') {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                }
                if last_was_field && struct_ref.is_none() {
                    *struct_ref = Some(cur);
                }
                i = j.max(i + 1);
                continue;
            }
            i += 1;
        }
    }

    fn range_binding(
        &self,
        owner: Option<&str>,
        tokens: &[Token],
        range: std::ops::Range<usize>,
    ) -> Option<Binding> {
        let mut atomics = Vec::new();
        let mut struct_ref = None;
        self.scan_self_chains(owner, tokens, range, &mut atomics, &mut struct_ref);
        if !atomics.is_empty() {
            atomics.sort();
            atomics.dedup();
            return Some(Binding::Fields(atomics));
        }
        struct_ref.map(Binding::Struct)
    }

    /// Builds the alias map of a fn body: `for` patterns, `let`
    /// bindings, and closure parameters bound to the atomic fields (or
    /// struct types) their source expressions mention.
    fn build_aliases(&self, def: &FnDef, tokens: &[Token]) -> HashMap<String, Binding> {
        let mut out: HashMap<String, Binding> = HashMap::new();
        let body = def.body.clone();
        let owner = def.owner.as_deref();
        let is_pattern_var = |t: &Token| {
            t.kind == TokenKind::Ident
                && !matches!(t.text.as_str(), "mut" | "ref" | "_" | "box")
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        };
        let mut i = body.start;
        while i < body.end {
            let t = &tokens[i];
            if t.is_ident("for") && !(i + 1 < body.end && tokens[i + 1].is_punct('<')) {
                // Pattern idents up to `in`, expr up to the loop `{`.
                let mut j = i + 1;
                let mut pattern = Vec::new();
                while j < body.end && !tokens[j].is_ident("in") {
                    if is_pattern_var(&tokens[j]) {
                        pattern.push(tokens[j].text.clone());
                    }
                    j += 1;
                    if j > i + 48 {
                        break;
                    }
                }
                if j < body.end && tokens[j].is_ident("in") {
                    let expr_start = j + 1;
                    let mut depth = 0isize;
                    let mut k = expr_start;
                    while k < body.end {
                        let tk = &tokens[k];
                        if tk.is_punct('(') || tk.is_punct('[') {
                            depth += 1;
                        } else if tk.is_punct(')') || tk.is_punct(']') {
                            depth -= 1;
                        } else if depth == 0 && tk.is_punct('{') {
                            break;
                        }
                        k += 1;
                    }
                    if let Some(b) = self.range_binding(owner, tokens, expr_start..k) {
                        for p in pattern {
                            out.insert(p, b.clone());
                        }
                    }
                    i = k;
                    continue;
                }
            }
            if t.is_ident("let") {
                let mut j = i + 1;
                let mut pattern = Vec::new();
                while j < body.end && !tokens[j].is_punct('=') && !tokens[j].is_punct(';') {
                    if is_pattern_var(&tokens[j]) {
                        pattern.push(tokens[j].text.clone());
                    }
                    j += 1;
                }
                if j < body.end && tokens[j].is_punct('=') {
                    let rhs_start = j + 1;
                    let mut depth = 0isize;
                    let mut k = rhs_start;
                    while k < body.end {
                        let tk = &tokens[k];
                        if tk.is_punct('(') || tk.is_punct('[') || tk.is_punct('{') {
                            depth += 1;
                        } else if tk.is_punct(')') || tk.is_punct(']') || tk.is_punct('}') {
                            depth -= 1;
                        } else if depth <= 0 && tk.is_punct(';') {
                            break;
                        }
                        k += 1;
                    }
                    if let Some(b) = self.range_binding(owner, tokens, rhs_start..k) {
                        for p in pattern {
                            out.insert(p, b.clone());
                        }
                    }
                    i = k;
                    continue;
                }
            }
            // Closure params: `|a, b|` with `|` in argument position.
            if t.is_punct('|') && i > body.start {
                let prev = &tokens[i - 1];
                if prev.is_punct('(')
                    || prev.is_punct(',')
                    || prev.is_punct('=')
                    || prev.is_punct('{')
                {
                    let mut params = Vec::new();
                    let mut j = i + 1;
                    while j < body.end && !tokens[j].is_punct('|') {
                        if is_pattern_var(&tokens[j]) {
                            params.push(tokens[j].text.clone());
                        }
                        j += 1;
                        if j > i + 24 {
                            break;
                        }
                    }
                    if !params.is_empty() {
                        // Candidate fields come from the enclosing
                        // statement: scan back to the nearest stmt edge.
                        let mut s = i;
                        while s > body.start {
                            let ts = &tokens[s - 1];
                            if ts.is_punct(';') || ts.is_punct('{') || ts.is_punct('}') {
                                break;
                            }
                            s -= 1;
                        }
                        let mut atomics = Vec::new();
                        let mut sref = None;
                        self.scan_self_chains(owner, tokens, s..i, &mut atomics, &mut sref);
                        if !atomics.is_empty() {
                            atomics.sort();
                            atomics.dedup();
                            for p in params {
                                out.insert(p, Binding::Fields(atomics.clone()));
                            }
                        }
                    }
                    i = j;
                    continue;
                }
            }
            i += 1;
        }
        out
    }

    fn extract_orderings(
        tokens: &[Token],
        range: std::ops::Range<usize>,
    ) -> Vec<(Option<OrderingName>, String, u32)> {
        let mut out = Vec::new();
        let mut i = range.start;
        while i + 3 < range.end {
            if tokens[i].is_ident("Ordering")
                && tokens[i + 1].is_punct(':')
                && tokens[i + 2].is_punct(':')
                && tokens[i + 3].kind == TokenKind::Ident
            {
                let name = tokens[i + 3].text.clone();
                out.push((OrderingName::parse_name(&name), name, tokens[i + 3].line));
                i += 4;
                continue;
            }
            i += 1;
        }
        out
    }

    fn fmt_allowed(list: &[OrderingName]) -> String {
        let names: Vec<&str> = list.iter().map(|o| o.as_str()).collect();
        format!("[{}]", names.join(", "))
    }
}

/// Runs every check and assembles the report. `sources` are
/// `(display_path, contents)`; `env` drives coverage accounting only.
pub fn analyze_sources(
    spec: &ProtocolSpec,
    sources: Vec<(String, String)>,
    env: &CfgEnv,
) -> Report {
    let a = Analyzer::new(spec, sources);
    let mut diags: Vec<Diagnostic> = Vec::new();
    // (owner::field) -> cfg condition sets observed (one per op)
    let mut observed: BTreeMap<String, Vec<Vec<String>>> = BTreeMap::new();
    let mut atomic_ops = 0usize;

    a.check_orderings(&mut diags, &mut observed, &mut atomic_ops);
    a.check_declarations(&mut diags);
    let reach_all = a.check_hot_paths(&mut diags);
    a.check_locks(&mut diags, &reach_all);
    a.check_hygiene(&mut diags);
    a.check_spec_coverage(&mut diags, &observed);

    let mut covered_fields = BTreeSet::new();
    for (key, op_cfgs) in &observed {
        if op_cfgs.iter().any(|cfgs| cfgs.iter().all(|c| env.eval(c))) {
            covered_fields.insert(key.clone());
        }
    }

    diags.sort();
    diags.dedup();
    Report {
        diagnostics: diags,
        covered_fields,
        files: a.files.len(),
        fns: a.fns.len(),
        atomic_ops,
    }
}

/// Reads every `.rs` file under `root` (recursively, sorted) and runs
/// [`analyze_sources`]; `display_prefix` is prepended to relative paths
/// in diagnostics.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk.
pub fn analyze_dir(
    spec: &ProtocolSpec,
    root: &Path,
    display_prefix: &str,
    env: &CfgEnv,
) -> std::io::Result<Report> {
    let mut paths = Vec::new();
    collect_rs(root, &mut paths)?;
    paths.sort();
    let mut sources = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let display = format!("{display_prefix}{rel}");
        sources.push((display, std::fs::read_to_string(&p)?));
    }
    Ok(analyze_sources(spec, sources, env))
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

impl Analyzer<'_> {
    fn check_orderings(
        &self,
        diags: &mut Vec<Diagnostic>,
        observed: &mut BTreeMap<String, Vec<Vec<String>>>,
        atomic_ops: &mut usize,
    ) {
        for g in 0..self.fns.len() {
            let def = self.fn_def(g);
            let file = self.fn_file(g);
            let tokens = &file.tokens;
            let aliases = self.build_aliases(def, tokens);
            let body = def.body.clone();
            let mut i = body.start;
            while i + 2 < body.end {
                // Free `fence(Ordering::X)` calls.
                if tokens[i].is_ident("fence")
                    && tokens[i + 1].is_punct('(')
                    && (i == body.start || !tokens[i - 1].is_punct('.'))
                {
                    let end = crate::parser::skip_group(tokens, i + 1, '(', ')');
                    for (ord, name, line) in Self::extract_orderings(tokens, i + 2..end) {
                        match ord {
                            Some(o) if self.spec.fences_allowed.contains(&o) => {}
                            Some(o) => diags.push(Diagnostic {
                                file: file.rel.clone(),
                                line,
                                check: Check::AtomicOrdering,
                                message: format!(
                                    "fence uses Ordering::{o}, allowed {}",
                                    Self::fmt_allowed(&self.spec.fences_allowed)
                                ),
                            }),
                            None => diags.push(Diagnostic {
                                file: file.rel.clone(),
                                line,
                                check: Check::AtomicOrdering,
                                message: format!("unknown ordering name `{name}` in fence"),
                            }),
                        }
                    }
                    i = end;
                    continue;
                }
                // Method-call atomic ops: `.method(args)`.
                if tokens[i].is_punct('.')
                    && tokens[i + 1].kind == TokenKind::Ident
                    && tokens[i + 2].is_punct('(')
                {
                    let method = tokens[i + 1].text.clone();
                    let line = tokens[i + 1].line;
                    let Some(kind) = op_kind(&method) else {
                        i += 1;
                        continue;
                    };
                    let args_end = crate::parser::skip_group(tokens, i + 2, '(', ')');
                    let ords = Self::extract_orderings(tokens, i + 3..args_end);
                    let segs = Self::collect_receiver(tokens, i).unwrap_or_default();
                    let mut fields = self.resolve_chain(def.owner.as_deref(), &aliases, &segs);
                    // Keep only fields that are actually atomic; a
                    // resolved non-atomic receiver (e.g. `cache.clear()`)
                    // is not an atomic op.
                    fields
                        .retain(|(o, n)| self.struct_field(o, n).is_some_and(FieldDef::is_atomic));
                    if fields.is_empty() {
                        if !ords.is_empty() {
                            // Definitely an atomic op (it names an
                            // Ordering); try the unique-atomic-field
                            // fallback before giving up.
                            let fallback = def.owner.as_deref().and_then(|o| {
                                let &(fi, si) = self.structs.get(o)?;
                                let atomics: Vec<_> = self.files[fi].parsed.structs[si]
                                    .fields
                                    .iter()
                                    .filter(|f| f.is_atomic())
                                    .collect();
                                if atomics.len() == 1 {
                                    Some((o.to_string(), atomics[0].name.clone()))
                                } else {
                                    None
                                }
                            });
                            match fallback {
                                Some(f) => fields.push(f),
                                None => {
                                    diags.push(Diagnostic {
                                        file: file.rel.clone(),
                                        line,
                                        check: Check::AtomicOrdering,
                                        message: format!(
                                            "atomic `.{method}(...)` could not be attributed to a declared field (receiver `{}`)",
                                            segs.join(".")
                                        ),
                                    });
                                    i = args_end;
                                    continue;
                                }
                            }
                        } else {
                            i += 1;
                            continue;
                        }
                    }
                    *atomic_ops += 1;
                    for (owner, name) in &fields {
                        let key = format!("{owner}::{name}");
                        let Some(fspec) = self.spec.field(owner, name) else {
                            diags.push(Diagnostic {
                                file: file.rel.clone(),
                                line,
                                check: Check::AtomicOrdering,
                                message: format!(
                                    "atomic field `{owner}.{name}` is not declared in PROTOCOL.toml"
                                ),
                            });
                            continue;
                        };
                        observed.entry(key).or_default().push(def.cfgs.clone());
                        let mut check_one = |pos: usize, allowed: &[OrderingName], what: &str| {
                            match ords.get(pos) {
                                Some((Some(o), _, oline)) => {
                                    if !allowed.contains(o) {
                                        diags.push(Diagnostic {
                                                file: file.rel.clone(),
                                                line: *oline,
                                                check: Check::AtomicOrdering,
                                                message: format!(
                                                    "`{owner}.{name}`: {what} uses Ordering::{o}, allowed {}",
                                                    Self::fmt_allowed(allowed)
                                                ),
                                            });
                                    }
                                }
                                Some((None, raw, oline)) => diags.push(Diagnostic {
                                    file: file.rel.clone(),
                                    line: *oline,
                                    check: Check::AtomicOrdering,
                                    message: format!(
                                        "`{owner}.{name}`: unknown ordering name `{raw}`"
                                    ),
                                }),
                                None => {
                                    if !fspec.parametric {
                                        diags.push(Diagnostic {
                                                file: file.rel.clone(),
                                                line,
                                                check: Check::AtomicOrdering,
                                                message: format!(
                                                    "`{owner}.{name}`: non-literal ordering argument on non-parametric field"
                                                ),
                                            });
                                    }
                                }
                            }
                        };
                        match kind {
                            OpKind::Load | OpKind::MaskLoad => check_one(0, &fspec.load, "load"),
                            OpKind::Store | OpKind::MaskStore => {
                                check_one(0, &fspec.store, "store")
                            }
                            OpKind::Rmw => check_one(0, &fspec.rmw, "rmw"),
                            OpKind::CmpXchg => {
                                check_one(0, &fspec.rmw, "compare_exchange success");
                                check_one(1, &fspec.rmw_failure, "compare_exchange failure");
                            }
                            OpKind::FetchUpdate => {
                                check_one(0, &fspec.rmw, "fetch_update set");
                                check_one(1, &fspec.load, "fetch_update fetch");
                            }
                            OpKind::MaskNoOrder => {
                                // Internally AcqRel (AtomicCpuMask::words);
                                // nothing to validate at this call site.
                            }
                        }
                    }
                    i = args_end;
                    continue;
                }
                i += 1;
            }
        }
    }

    /// Declaration-level completeness: every atomic/mutex struct field
    /// in analyzed (non-exempt, non-test) code must appear in the spec.
    fn check_declarations(&self, diags: &mut Vec<Diagnostic>) {
        for f in &self.files {
            if f.exempt {
                continue;
            }
            for s in &f.parsed.structs {
                if s.in_test {
                    continue;
                }
                for fd in &s.fields {
                    if fd.is_atomic() && self.spec.field(&s.name, &fd.name).is_none() {
                        diags.push(Diagnostic {
                            file: f.rel.clone(),
                            line: fd.line,
                            check: Check::SpecCoverage,
                            message: format!(
                                "atomic field `{}.{}` is not declared in PROTOCOL.toml",
                                s.name, fd.name
                            ),
                        });
                    }
                    if fd.is_mutex() && self.spec.lock(&s.name, &fd.name).is_none() {
                        diags.push(Diagnostic {
                            file: f.rel.clone(),
                            line: fd.line,
                            check: Check::SpecCoverage,
                            message: format!(
                                "mutex field `{}.{}` is not declared in PROTOCOL.toml [[lock]]",
                                s.name, fd.name
                            ),
                        });
                    }
                }
            }
        }
    }

    /// Spec-side staleness: every spec entry must match a real field,
    /// and every field entry must be exercised by at least one op.
    fn check_spec_coverage(
        &self,
        diags: &mut Vec<Diagnostic>,
        observed: &BTreeMap<String, Vec<Vec<String>>>,
    ) {
        for f in &self.spec.fields {
            let key = format!("{}::{}", f.owner, f.name);
            match self.struct_field(&f.owner, &f.name) {
                Some(fd) if fd.is_atomic() => {
                    if !observed.contains_key(&key) {
                        diags.push(Diagnostic {
                            file: "PROTOCOL.toml".to_string(),
                            line: 0,
                            check: Check::SpecCoverage,
                            message: format!(
                                "spec declares `{}.{}` but no operation on it was found (stale entry?)",
                                f.owner, f.name
                            ),
                        });
                    }
                }
                _ => diags.push(Diagnostic {
                    file: "PROTOCOL.toml".to_string(),
                    line: 0,
                    check: Check::SpecCoverage,
                    message: format!(
                        "spec declares `{}.{}` but no such atomic field exists",
                        f.owner, f.name
                    ),
                }),
            }
        }
        for l in &self.spec.locks {
            match self.struct_field(&l.owner, &l.name) {
                Some(fd) if fd.is_mutex() => {}
                _ => diags.push(Diagnostic {
                    file: "PROTOCOL.toml".to_string(),
                    line: 0,
                    check: Check::SpecCoverage,
                    message: format!(
                        "spec declares lock `{}.{}` but no such mutex field exists",
                        l.owner, l.name
                    ),
                }),
            }
        }
    }

    /// Call-graph reachability from `#[latr::hot_path]` roots. Returns
    /// the full reachable set (no `alloc_ok` stop) for the lock check;
    /// emits allocation diagnostics along the alloc-bounded walk.
    fn check_hot_paths(&self, diags: &mut Vec<Diagnostic>) -> HashMap<usize, Option<usize>> {
        // Expected roots must exist and be annotated.
        for root in &self.spec.hot_path.roots {
            let found: Vec<usize> = (0..self.fns.len())
                .filter(|&g| self.fn_def(g).qualified() == *root)
                .collect();
            if found.is_empty() {
                diags.push(Diagnostic {
                    file: "PROTOCOL.toml".to_string(),
                    line: 0,
                    check: Check::HotPathAlloc,
                    message: format!("hot-path root `{root}` not found in analyzed code"),
                });
            } else if !found
                .iter()
                .any(|&g| self.fn_def(g).has_attr("latr::hot_path"))
            {
                let g = found[0];
                diags.push(Diagnostic {
                    file: self.fn_file(g).rel.clone(),
                    line: self.fn_def(g).line,
                    check: Check::HotPathAlloc,
                    message: format!("`{root}` is missing its #[latr::hot_path] annotation"),
                });
            }
        }
        let roots: Vec<usize> = (0..self.fns.len())
            .filter(|&g| self.fn_def(g).has_attr("latr::hot_path"))
            .collect();
        let reach_full = self.reach(&roots, false);
        let reach_alloc = self.reach(&roots, true);
        for &g in reach_alloc.keys() {
            self.scan_allocs(g, diags, &reach_alloc);
        }
        reach_full
    }

    fn reach(&self, roots: &[usize], stop_at_alloc_ok: bool) -> HashMap<usize, Option<usize>> {
        let mut parents: HashMap<usize, Option<usize>> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if stop_at_alloc_ok && self.fn_def(r).has_attr("latr::alloc_ok") {
                continue;
            }
            if parents.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(g) = queue.pop_front() {
            let def = self.fn_def(g);
            let tokens = &self.fn_file(g).tokens;
            let body = def.body.clone();
            let mut i = body.start;
            while i + 1 < body.end {
                let t = &tokens[i];
                if t.kind == TokenKind::Ident
                    && tokens[i + 1].is_punct('(')
                    && !(i > body.start && tokens[i - 1].is_ident("fn"))
                    && !AMORTIZED_METHODS.contains(&t.text.as_str())
                    && !ALLOC_METHODS.contains(&t.text.as_str())
                {
                    if let Some(callees) = self.by_name.get(&t.text) {
                        for &c in callees {
                            if stop_at_alloc_ok && self.fn_def(c).has_attr("latr::alloc_ok") {
                                continue;
                            }
                            if let std::collections::hash_map::Entry::Vacant(e) = parents.entry(c) {
                                e.insert(Some(g));
                                queue.push_back(c);
                            }
                        }
                    }
                }
                i += 1;
            }
        }
        parents
    }

    fn chain(&self, g: usize, parents: &HashMap<usize, Option<usize>>) -> String {
        let mut names = vec![self.fn_def(g).qualified()];
        let mut cur = g;
        while let Some(Some(p)) = parents.get(&cur) {
            names.push(self.fn_def(*p).qualified());
            cur = *p;
        }
        names.reverse();
        names.join(" -> ")
    }

    fn scan_allocs(
        &self,
        g: usize,
        diags: &mut Vec<Diagnostic>,
        parents: &HashMap<usize, Option<usize>>,
    ) {
        let def = self.fn_def(g);
        let file = self.fn_file(g);
        let tokens = &file.tokens;
        let body = def.body.clone();
        let mut i = body.start;
        let mut push_diag = |line: u32, what: String| {
            diags.push(Diagnostic {
                file: file.rel.clone(),
                line,
                check: Check::HotPathAlloc,
                message: format!(
                    "allocation in hot path: {what} (reachable via {})",
                    self.chain(g, parents)
                ),
            });
        };
        while i < body.end {
            let t = &tokens[i];
            if t.kind == TokenKind::Ident {
                // `vec!` / `format!` macros.
                if matches!(t.text.as_str(), "vec" | "format")
                    && i + 1 < body.end
                    && tokens[i + 1].is_punct('!')
                {
                    push_diag(t.line, format!("`{}!` macro", t.text));
                    i += 2;
                    continue;
                }
                // `Box::new`, `Vec::with_capacity`, `String::from`, ...
                if matches!(
                    t.text.as_str(),
                    "Box" | "Vec" | "String" | "VecDeque" | "HashMap"
                ) && i + 3 < body.end
                    && tokens[i + 1].is_punct(':')
                    && tokens[i + 2].is_punct(':')
                    && tokens[i + 3].kind == TokenKind::Ident
                {
                    let m = tokens[i + 3].text.as_str();
                    let allocates = match t.text.as_str() {
                        "Box" => m == "new",
                        _ => matches!(m, "with_capacity" | "from"),
                    };
                    if allocates {
                        push_diag(t.line, format!("`{}::{}`", t.text, m));
                        i += 4;
                        continue;
                    }
                }
            }
            if t.is_punct('.') && i + 2 < body.end && tokens[i + 1].kind == TokenKind::Ident {
                let m = tokens[i + 1].text.as_str();
                let line = tokens[i + 1].line;
                let called = tokens[i + 2].is_punct('(')
                    || (tokens[i + 2].is_punct(':')
                        && i + 3 < body.end
                        && tokens[i + 3].is_punct(':'));
                if called && ALLOC_METHODS.contains(&m) {
                    push_diag(line, format!("`.{m}(...)`"));
                    i += 2;
                    continue;
                }
                if tokens[i + 2].is_punct('(') && AMORTIZED_METHODS.contains(&m) {
                    let recv = Self::collect_receiver(tokens, i)
                        .and_then(|segs| segs.last().cloned())
                        .unwrap_or_else(|| "<expr>".to_string());
                    if !self.spec.hot_path.amortized_receivers.contains(&recv) {
                        push_diag(
                            line,
                            format!(
                                "amortized growth `.{m}(...)` on receiver `{recv}` not in amortized_receivers"
                            ),
                        );
                    }
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }
    }

    fn check_locks(&self, diags: &mut Vec<Diagnostic>, reach_all: &HashMap<usize, Option<usize>>) {
        for g in 0..self.fns.len() {
            let def = self.fn_def(g);
            let file = self.fn_file(g);
            let tokens = &file.tokens;
            let aliases = self.build_aliases(def, tokens);
            let body = def.body.clone();
            let mut seq: Vec<(String, u32)> = Vec::new();
            let mut i = body.start;
            while i + 2 < body.end {
                if tokens[i].is_punct('.')
                    && tokens[i + 1].kind == TokenKind::Ident
                    && tokens[i + 2].is_punct('(')
                {
                    let m = tokens[i + 1].text.as_str();
                    if m == "lock" || m == "try_lock" {
                        let line = tokens[i + 1].line;
                        let blocking = m == "lock";
                        let segs = Self::collect_receiver(tokens, i).unwrap_or_default();
                        let mut fields = self.resolve_chain(def.owner.as_deref(), &aliases, &segs);
                        fields.retain(|(o, n)| {
                            self.struct_field(o, n).is_some_and(FieldDef::is_mutex)
                        });
                        for (owner, name) in fields {
                            let Some(lspec) = self.spec.lock(&owner, &name) else {
                                diags.push(Diagnostic {
                                    file: file.rel.clone(),
                                    line,
                                    check: Check::LockDiscipline,
                                    message: format!(
                                        "mutex field `{owner}.{name}` is not declared in PROTOCOL.toml [[lock]]"
                                    ),
                                });
                                continue;
                            };
                            seq.push((lspec.class.clone(), line));
                            if blocking
                                && lspec.sweep_try_only
                                && reach_all.contains_key(&g)
                                && !lspec.blocking_allowed.contains(&def.qualified())
                            {
                                diags.push(Diagnostic {
                                    file: file.rel.clone(),
                                    line,
                                    check: Check::LockDiscipline,
                                    message: format!(
                                        "blocking `lock()` on `{owner}.{name}` (class `{}`) in sweep-reachable `{}` ({}); use try_lock or add it to blocking_allowed with a rationale",
                                        lspec.class,
                                        def.qualified(),
                                        self.chain(g, reach_all)
                                    ),
                                });
                            }
                        }
                    }
                }
                i += 1;
            }
            // Per-function acquisition order must follow the spec.
            for w in seq.windows(2) {
                let (a_class, _) = &w[0];
                let (b_class, b_line) = &w[1];
                if a_class == b_class {
                    continue;
                }
                let ia = self.spec.lock_order.iter().position(|c| c == a_class);
                let ib = self.spec.lock_order.iter().position(|c| c == b_class);
                if let (Some(ia), Some(ib)) = (ia, ib) {
                    if ib < ia {
                        diags.push(Diagnostic {
                            file: file.rel.clone(),
                            line: *b_line,
                            check: Check::LockDiscipline,
                            message: format!(
                                "lock order violation in `{}`: class `{b_class}` acquired after `{a_class}`, [lock_order] is [{}]",
                                def.qualified(),
                                self.spec.lock_order.join(", ")
                            ),
                        });
                    }
                }
            }
        }
    }

    fn check_hygiene(&self, diags: &mut Vec<Diagnostic>) {
        const BAD: &[&str] = &["atomic", "Mutex", "MutexGuard", "RwLock", "Condvar"];
        for f in &self.files {
            if f.exempt {
                continue;
            }
            let tokens = &f.tokens;
            let mut i = 0usize;
            while i + 4 < tokens.len() {
                let is_root = tokens[i].is_ident("std") || tokens[i].is_ident("core");
                if is_root
                    && tokens[i + 1].is_punct(':')
                    && tokens[i + 2].is_punct(':')
                    && tokens[i + 3].is_ident("sync")
                    && i + 6 < tokens.len()
                    && tokens[i + 4].is_punct(':')
                    && tokens[i + 5].is_punct(':')
                {
                    let root = tokens[i].text.clone();
                    let next = &tokens[i + 6];
                    if next.kind == TokenKind::Ident && BAD.contains(&next.text.as_str()) {
                        diags.push(Diagnostic {
                            file: f.rel.clone(),
                            line: next.line,
                            check: Check::ShimHygiene,
                            message: format!(
                                "direct `{root}::sync::{}` use; rt code must route atomics and locks through rt/sync.rs",
                                next.text
                            ),
                        });
                        i += 7;
                        continue;
                    }
                    if next.is_punct('{') {
                        let end = crate::parser::skip_group(tokens, i + 6, '{', '}');
                        for t in &tokens[i + 7..end.saturating_sub(1)] {
                            if t.kind == TokenKind::Ident && BAD.contains(&t.text.as_str()) {
                                diags.push(Diagnostic {
                                    file: f.rel.clone(),
                                    line: t.line,
                                    check: Check::ShimHygiene,
                                    message: format!(
                                        "direct `{root}::sync::{}` use; rt code must route atomics and locks through rt/sync.rs",
                                        t.text
                                    ),
                                });
                            }
                        }
                        i = end;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
}
