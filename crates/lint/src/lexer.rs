//! A small span-tracking Rust lexer.
//!
//! `latr-lint` works at the token level (there is no vendored `syn`; the
//! workspace builds fully offline), so this lexer is the foundation of
//! every check. It handles exactly what real rt code throws at it:
//! nested block comments, doc comments, (raw/byte) strings, char vs.
//! lifetime disambiguation, and numeric literals. Every token carries
//! the 1-based line it starts on, which is what the diagnostics report.

/// What a token is. Punctuation is kept one character per token
/// (`::` is two `Punct(':')` tokens); pattern helpers match sequences.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`self`, `fn`, `Ordering`, ...).
    Ident,
    /// Lifetime (`'a`, `'_`) — text excludes the quote.
    Lifetime,
    /// Numeric literal.
    Number,
    /// String literal of any flavor (text excludes quotes/hashes).
    Str,
    /// Char literal.
    Char,
    /// Single punctuation character.
    Punct,
}

/// One token with its source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's text (see [`TokenKind`] for what's included).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens, discarding whitespace and comments.
/// Unterminated constructs simply end the token stream — a lint should
/// degrade, not panic, on weird input (rustc is the real syntax gate).
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let count_lines = |slice: &[char]| slice.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments (doc comments included — the lint ignores them all).
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if chars[i + 1] == '*' {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_lines(&chars[start..i.min(n)]);
                continue;
            }
        }
        // Raw / byte string prefixes.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            // r"...", r#"..."#, b"...", br#"..."# — the prefix lexes as an
            // ident that runs straight into `"` or `#`.
            let is_raw_prefix = matches!(word.as_str(), "r" | "br" | "b" | "rb");
            if is_raw_prefix && i < n && (chars[i] == '"' || chars[i] == '#') {
                let mut hashes = 0usize;
                while i < n && chars[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                if i < n && chars[i] == '"' {
                    i += 1;
                    let text_start = i;
                    'raw: while i < n {
                        if chars[i] == '"' {
                            let mut ok = true;
                            for k in 0..hashes {
                                if i + 1 + k >= n || chars[i + 1 + k] != '#' {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                let text: String = chars[text_start..i].iter().collect();
                                line += count_lines(&chars[start..i]);
                                tokens.push(Token {
                                    kind: TokenKind::Str,
                                    text,
                                    line,
                                });
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    continue;
                }
                // `r#ident` raw identifier: hashes consumed, next is ident.
                if hashes == 1 && i < n && is_ident_start(chars[i]) {
                    let id_start = i;
                    while i < n && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: chars[id_start..i].iter().collect(),
                        line,
                    });
                    continue;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: word,
                line,
            });
            continue;
        }
        if c == '"' {
            let start = i;
            i += 1;
            let text_start = i;
            while i < n && chars[i] != '"' {
                if chars[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            let text: String = chars[text_start..i.min(n)].iter().collect();
            tokens.push(Token {
                kind: TokenKind::Str,
                text,
                line,
            });
            line += count_lines(&chars[start..i.min(n)]);
            i = (i + 1).min(n);
            continue;
        }
        if c == '\'' {
            // Lifetime vs. char: `'` + ident-start + (no closing `'`) is a
            // lifetime; everything else is a char literal.
            if i + 1 < n && is_ident_start(chars[i + 1]) && (i + 2 >= n || chars[i + 2] != '\'') {
                let start = i + 1;
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
                continue;
            }
            let start = i;
            i += 1;
            while i < n && chars[i] != '\'' {
                if chars[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i = (i + 1).min(n);
            tokens.push(Token {
                kind: TokenKind::Char,
                text: chars[start..i.min(n)].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_continue(chars[i])) {
                i += 1;
            }
            // Consume a fractional part only when followed by a digit, so
            // `0..n` stays Number Punct Punct Ident.
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_ordering_paths() {
        let toks = lex("slot.active.store(true, Ordering::Release);");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "slot", ".", "active", ".", "store", "(", "true", ",", "Ordering", ":", ":",
                "Release", ")", ";"
            ]
        );
    }

    #[test]
    fn tracks_lines_through_comments_and_strings() {
        let src = "a\n/* x\n y */ b\n\"s\ntr\" c";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1); // a
        assert_eq!(toks[1].line, 3); // b
        assert_eq!(toks[3].line, 5); // c (string spans lines 4-5)
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("&'a str; 'x'; '\\n'");
        assert_eq!(toks[1].kind, TokenKind::Lifetime);
        assert_eq!(toks[1].text, "a");
        assert_eq!(toks[4].kind, TokenKind::Char);
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let toks = lex(r##"let s = r#"not // a "comment""#; x"##);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }
}
