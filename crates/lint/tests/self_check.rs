//! Dogfood: the real rt sources must be clean against the real
//! PROTOCOL.toml, and the default and `--features reference` runs must
//! cover the same spec fields (no atomic op hides from the spec behind
//! the backend-flip feature).

use std::collections::BTreeSet;
use std::path::PathBuf;

use latr_lint::{analyze_dir, CfgEnv, ProtocolSpec};

fn rt_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../core/src/rt")
}

fn load_spec() -> ProtocolSpec {
    let text = std::fs::read_to_string(rt_dir().join("PROTOCOL.toml")).unwrap();
    ProtocolSpec::parse(&text).unwrap()
}

#[test]
fn real_rt_sources_are_protocol_clean() {
    let spec = load_spec();
    let report = analyze_dir(&spec, &rt_dir(), "crates/core/src/rt/", &CfgEnv::default()).unwrap();
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "rt sources violate PROTOCOL.toml:\n{}",
        rendered.join("\n")
    );
    // A vacuous pass would also be a failure: the analyzer must have
    // actually attributed a substantial number of atomic operations.
    assert!(
        report.atomic_ops >= 100,
        "only {} atomic ops attributed — attribution regressed",
        report.atomic_ops
    );
}

#[test]
fn reference_run_covers_the_same_spec_fields() {
    let spec = load_spec();
    let base = analyze_dir(&spec, &rt_dir(), "", &CfgEnv::default()).unwrap();
    let reference =
        analyze_dir(&spec, &rt_dir(), "", &CfgEnv::with_features(&["reference"])).unwrap();
    assert_eq!(
        base.covered_fields, reference.covered_fields,
        "default and reference cfg runs cover different spec fields"
    );
    // The only entry allowed to go uncovered in *both* runs is the
    // loom-only deterministic clock, whose ops sit behind cfg(loom).
    let all: BTreeSet<String> = spec
        .fields
        .iter()
        .map(|f| format!("{}::{}", f.owner, f.name))
        .collect();
    let missing: Vec<&String> = all.difference(&base.covered_fields).collect();
    assert_eq!(
        missing,
        vec!["FrontierWatchdog::clock_ns"],
        "unexpected uncovered spec fields"
    );
}
