//! Fixture-based negative tests: each directory under `tests/fixtures/`
//! holds a tiny rt-shaped source tree (`src.rs`), a spec
//! (`PROTOCOL.toml`), and the blessed diagnostics (`expected.txt`).
//! Diagnostics are snapshot-compared; re-bless with
//! `LATR_BLESS=1 cargo test -p latr-lint --test fixtures`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use latr_lint::{analyze_dir, CfgEnv, ProtocolSpec};

fn fixture_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_fixture(name: &str) {
    let dir = fixture_dir(name);
    let spec_text = std::fs::read_to_string(dir.join("PROTOCOL.toml"))
        .unwrap_or_else(|e| panic!("{name}: missing PROTOCOL.toml: {e}"));
    let spec = ProtocolSpec::parse(&spec_text).unwrap_or_else(|e| panic!("{name}: {e}"));
    let report =
        analyze_dir(&spec, &dir, "", &CfgEnv::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut got = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(got, "{d}");
    }
    let expected_path = dir.join("expected.txt");
    if std::env::var("LATR_BLESS").is_ok() {
        std::fs::write(&expected_path, &got).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("{name}: missing expected.txt (run with LATR_BLESS=1): {e}"));
    assert_eq!(
        got, expected,
        "fixture `{name}` diagnostics drifted; re-bless with LATR_BLESS=1 if intentional"
    );
}

#[test]
fn wrong_ordering() {
    run_fixture("wrong_ordering");
}

#[test]
fn alloc_in_hot_path() {
    run_fixture("alloc_in_hot_path");
}

#[test]
fn blocking_lock() {
    run_fixture("blocking_lock");
}

#[test]
fn raw_std_atomic() {
    run_fixture("raw_std_atomic");
}

#[test]
fn undeclared_atomic() {
    run_fixture("undeclared_atomic");
}

#[test]
fn fixtures_expect_nonempty_diagnostics() {
    // Guard against a silently pacified analyzer: every negative fixture
    // must keep producing at least one diagnostic.
    if std::env::var("LATR_BLESS").is_ok() {
        return; // snapshots are being rewritten concurrently
    }
    for name in [
        "wrong_ordering",
        "alloc_in_hot_path",
        "blocking_lock",
        "raw_std_atomic",
        "undeclared_atomic",
    ] {
        let expected =
            std::fs::read_to_string(fixture_dir(name).join("expected.txt")).unwrap_or_default();
        assert!(
            !expected.trim().is_empty(),
            "fixture `{name}` has an empty expected.txt — it no longer tests anything"
        );
    }
}
