//! Property tests for the protocol wire format, same posture as the
//! `ThreadFaultPlan` round-trip suite: any spec the types can express
//! must survive `to_config_string` → `parse` exactly, arbitrary junk
//! must never panic the parser, and malformed specs must be rejected
//! with the offending line.

use latr_lint::protocol::{FieldSpec, HotPathSpec, LockSpec, OrderingName, ProtocolSpec};
use proptest::prelude::*;

const OWNERS: [&str; 4] = ["Slot", "RtQueue", "RtRegistry", "Mask"];
const CLASSES: [&str; 3] = ["transition", "shard", "window"];
const PHRASES: [&str; 3] = [
    "Release publication pairs with Acquire readers.",
    "Statistics counter, read fuzzily.",
    "Held briefly; contention bounded.",
];

fn orderings_from_mask(mask: u8) -> Vec<OrderingName> {
    OrderingName::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, o)| *o)
        .collect()
}

// The vendored proptest supports tuples up to arity 4; nest pairs to
// stay under it.
type FieldTuple = ((usize, u32, usize), (u8, u8), (u8, u8), (bool, usize));
type LockTuple = ((usize, u32), (usize, bool), (u32, usize));

fn arb_field() -> impl Strategy<Value = FieldTuple> {
    (
        (0..OWNERS.len(), 0u32..1000, 0..OWNERS.len()),
        (1u8..32, 0u8..32),
        (0u8..32, 0u8..32),
        (any::<bool>(), 0..PHRASES.len()),
    )
}

fn arb_lock() -> impl Strategy<Value = LockTuple> {
    (
        (0..OWNERS.len(), 0u32..1000),
        (0..CLASSES.len(), any::<bool>()),
        (0u32..1000, 0..PHRASES.len()),
    )
}

proptest! {
    #[test]
    fn spec_round_trips_through_config_string(
        fields in prop::collection::vec(arb_field(), 0..8),
        locks in prop::collection::vec(arb_lock(), 0..4),
        misc in (0u8..32, prop::collection::vec(0u32..1000, 0..3)),
        root_ids in prop::collection::vec((0..OWNERS.len(), 0u32..1000), 1..4),
    ) {
        let (fence_mask, receivers) = misc;
        let mut spec = ProtocolSpec {
            version: 1,
            fences_allowed: orderings_from_mask(fence_mask),
            lock_order: CLASSES.iter().map(|c| c.to_string()).collect(),
            hot_path: HotPathSpec {
                roots: vec!["Root::sweep".to_string()],
                amortized_receivers: receivers
                    .iter()
                    .map(|r| format!("buf{r}"))
                    .collect(),
            },
            fields: Vec::new(),
            locks: Vec::new(),
        };
        for (oid, root) in root_ids {
            let r = format!("{}::root{root}", OWNERS[oid]);
            if !spec.hot_path.roots.contains(&r) {
                spec.hot_path.roots.push(r);
            }
        }
        for ((oid, nid, tid), (load_m, store_m), (rmw_m, fail_m), (parametric, pid)) in fields {
            let owner = OWNERS[oid].to_string();
            let name = format!("f{nid}");
            if spec.field(&owner, &name).is_some() {
                continue; // keys must be unique; skip duplicates
            }
            let rmw = orderings_from_mask(rmw_m);
            let rmw_failure = if rmw.is_empty() {
                Vec::new() // rmw_failure requires rmw
            } else {
                orderings_from_mask(fail_m)
            };
            spec.fields.push(FieldSpec {
                owner,
                name,
                atomic_type: format!("Atomic{}", OWNERS[tid]),
                parametric,
                load: orderings_from_mask(load_m),
                store: orderings_from_mask(store_m),
                rmw,
                rmw_failure,
                rationale: PHRASES[pid].to_string(),
            });
        }
        for ((oid, nid), (cid, try_only), (blocked, pid)) in locks {
            let owner = OWNERS[oid].to_string();
            let name = format!("l{nid}");
            if spec.lock(&owner, &name).is_some() {
                continue;
            }
            spec.locks.push(LockSpec {
                owner,
                name,
                class: CLASSES[cid].to_string(),
                sweep_try_only: try_only,
                blocking_allowed: vec![format!("Owner::blocked{blocked}")],
                rationale: PHRASES[pid].to_string(),
            });
        }
        // The generators construct only valid specs; a validation failure
        // here means the builders and validate() have drifted apart.
        prop_assert!(spec.validate().is_ok(), "generated spec invalid: {:?}", spec.validate());
        let text = spec.to_config_string();
        prop_assert_eq!(ProtocolSpec::parse(&text), Ok(spec));
    }

    #[test]
    fn parse_never_panics_on_arbitrary_input(
        bytes in prop::collection::vec(0u8..128, 0..300),
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = ProtocolSpec::parse(&text);
    }
}

const MINIMAL: &str = "[protocol]\nversion = 1\n\n[hot_path]\nroots = [\"Owner::root\"]\n";

fn with_field(extra: &str) -> String {
    format!(
        "{MINIMAL}\n[[field]]\nowner = \"S\"\nname = \"f\"\ntype = \"AtomicU64\"\nload = [\"Acquire\"]\nrationale = \"ok\"\n{extra}"
    )
}

#[test]
fn minimal_spec_parses() {
    ProtocolSpec::parse(MINIMAL).unwrap();
    ProtocolSpec::parse(&with_field("")).unwrap();
}

#[test]
fn rejects_unknown_keys_with_line() {
    let bad = with_field("wibble = 3\n");
    let e = ProtocolSpec::parse(&bad).unwrap_err();
    assert!(e.message.contains("unknown key `wibble`"), "{e}");
    assert_eq!(e.line, bad.lines().count());
}

#[test]
fn rejects_unknown_ordering_names() {
    let bad = with_field("store = [\"Sequential\"]\n");
    let e = ProtocolSpec::parse(&bad).unwrap_err();
    assert!(e.message.contains("Sequential"), "{e}");
}

#[test]
fn rejects_duplicate_field_entries() {
    let bad = format!(
        "{}\n[[field]]\nowner = \"S\"\nname = \"f\"\ntype = \"AtomicU64\"\nload = [\"Acquire\"]\nrationale = \"dup\"\n",
        with_field("")
    );
    let e = ProtocolSpec::parse(&bad).unwrap_err();
    assert_eq!(e.line, 0, "duplicate keys are a whole-spec validation: {e}");
    assert!(e.message.contains("duplicate field entry"), "{e}");
}

#[test]
fn rejects_duplicate_keys_within_a_table() {
    let bad = with_field("load = [\"Relaxed\"]\n");
    let e = ProtocolSpec::parse(&bad).unwrap_err();
    assert!(e.message.contains("duplicate key `load`"), "{e}");
}

#[test]
fn rejects_unknown_tables() {
    let bad = format!("{MINIMAL}\n[wibble]\nx = 1\n");
    let e = ProtocolSpec::parse(&bad).unwrap_err();
    assert!(e.message.contains("unknown"), "{e}");
}

#[test]
fn rejects_wrong_version() {
    let bad = MINIMAL.replace("version = 1", "version = 2");
    let e = ProtocolSpec::parse(&bad).unwrap_err();
    assert!(e.message.contains("version"), "{e}");
}

#[test]
fn rejects_rmw_failure_without_rmw() {
    let bad = with_field("rmw_failure = [\"Acquire\"]\n");
    let e = ProtocolSpec::parse(&bad).unwrap_err();
    assert!(e.message.contains("rmw_failure"), "{e}");
}

#[test]
fn rejects_missing_rationale() {
    let bad = format!(
        "{MINIMAL}\n[[field]]\nowner = \"S\"\nname = \"f\"\ntype = \"AtomicU64\"\nload = [\"Acquire\"]\n"
    );
    let e = ProtocolSpec::parse(&bad).unwrap_err();
    assert!(e.message.contains("rationale"), "{e}");
}

#[test]
fn rejects_lock_class_not_in_order() {
    let bad = format!(
        "{MINIMAL}\n[[lock]]\nowner = \"S\"\nname = \"m\"\nclass = \"ghost\"\nrationale = \"x\"\n"
    );
    let e = ProtocolSpec::parse(&bad).unwrap_err();
    assert!(e.message.contains("ghost"), "{e}");
}

#[test]
fn rejects_empty_roots() {
    let bad = "[protocol]\nversion = 1\n\n[hot_path]\nroots = []\n";
    let e = ProtocolSpec::parse(bad).unwrap_err();
    assert!(e.message.contains("roots"), "{e}");
}
