//! Fixture: ordering violations on a declared field — a Relaxed load
//! where Acquire is required, and SeqCst creep on the store side.

use crate::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    seq: AtomicU64,
}

impl Counter {
    #[latr::hot_path]
    pub fn read(&self) -> u64 {
        self.seq.load(Ordering::Relaxed) // BAD: spec says Acquire
    }

    pub fn publish(&self, v: u64) {
        self.seq.store(v, Ordering::SeqCst); // BAD: SeqCst creep, spec says Release
    }

    pub fn ok_path(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}
