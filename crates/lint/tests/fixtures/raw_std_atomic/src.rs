//! Fixture: shim hygiene — direct `std::sync` atomics/locks instead of
//! the `rt/sync.rs` loom shim, in both path and grouped-import form.

use std::sync::atomic::{AtomicUsize, Ordering}; // BAD: must go through the shim
use std::sync::Mutex; // BAD
use std::sync::{Condvar, RwLock}; // BAD twice

pub struct T {
    n: usize,
}

impl T {
    #[latr::hot_path]
    pub fn root(&self) -> usize {
        self.n
    }
}
