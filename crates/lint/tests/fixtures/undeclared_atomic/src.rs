//! Fixture: spec/code drift in both directions — an atomic field the
//! spec does not know, and a stale spec entry with no matching field.

use crate::sync::atomic::{AtomicU64, Ordering};

pub struct Gauge {
    value: AtomicU64, // BAD: not declared in PROTOCOL.toml
}

impl Gauge {
    #[latr::hot_path]
    pub fn read(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}
