//! Fixture: heap allocation reachable from a `#[latr::hot_path]` root,
//! one hop down the call graph. `out` is a sanctioned amortized
//! receiver; `scratch` is not; `#[latr::alloc_ok]` bounds the walk.

pub struct Sweeper {
    n: usize,
}

impl Sweeper {
    #[latr::hot_path]
    pub fn sweep_into(&self, out: &mut Vec<u64>) {
        out.push(1); // ok: `out` is in amortized_receivers
        self.helper(out);
    }

    fn helper(&self, out: &mut Vec<u64>) {
        let mut scratch = Vec::with_capacity(self.n); // BAD: hard allocation
        scratch.push(7); // BAD: growth of a non-sanctioned receiver
        out.extend(scratch.iter().copied()); // ok: amortized into `out`
    }

    #[latr::alloc_ok]
    fn degraded(&self) -> Vec<u64> {
        vec![0; self.n] // sanctioned: behind the alloc_ok boundary
    }
}
