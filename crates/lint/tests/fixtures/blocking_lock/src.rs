//! Fixture: lock discipline — a blocking `lock()` on a sweep-reachable
//! path (must be `try_lock`), and a per-function class-order violation.
//! `exclude` blocks legally via `blocking_allowed`.

use crate::sync::Mutex;

pub struct Registry {
    transition: Mutex<()>,
    wheel: Mutex<u32>,
}

impl Registry {
    #[latr::hot_path]
    pub fn sweep(&self) {
        self.advance();
    }

    fn advance(&self) {
        let _g = self.transition.lock(); // BAD: sweep-reachable, must try_lock
    }

    pub fn exclude(&self) {
        let _g = self.transition.lock(); // ok: listed in blocking_allowed
    }

    pub fn resize(&self) {
        let _w = self.wheel.lock();
        let _t = self.transition.lock(); // BAD: `transition` orders before `wheel`
    }
}
