//! Minimal stand-in for `serde`: marker traits plus re-exported no-op
//! derive macros. Nothing in this workspace serializes data; the traits
//! exist so `#[derive(Serialize, Deserialize)]` and `use serde::...`
//! compile unchanged against the real crate's API subset.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
