//! Minimal stand-in for `parking_lot` 0.12: `Mutex` and `RwLock` with the
//! guard-returning, poison-free API, implemented over `std::sync`. Poison
//! is recovered (a panicked holder does not poison the lock), matching
//! parking_lot semantics closely enough for this workspace.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison_value(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader–writer lock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison_value(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(std::sync::TryLockError::Poisoned(p)) => f
                .debug_struct("RwLock")
                .field("data", &&*p.into_inner())
                .finish(),
            Err(std::sync::TryLockError::WouldBlock) => f.write_str("RwLock { <locked> }"),
        }
    }
}

fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn unpoison_value<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

// Keep the module exercised in this crate's own test run.
#[allow(dead_code)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Mutex<Vec<u8>>>();
    check::<RwLock<Vec<u8>>>();
    let _ = AtomicBool::new(false).load(Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
