//! No-op derive macros for `Serialize`/`Deserialize`.
//!
//! The repository only ever *derives* these traits (no code path
//! serializes anything), so emitting nothing is sufficient and keeps the
//! offline build dependency-free.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
