//! Minimal stand-in for `rand` 0.9: just the [`RngCore`] trait, which is
//! the only item this workspace uses (`latr_sim::SimRng` implements it so
//! callers can layer distribution helpers on top).

/// Core trait of random-number generators (API-compatible subset of
/// `rand::RngCore` 0.9).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}
