//! Minimal, deterministic stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, tuples, integer/float range
//!   strategies, [`collection::vec`], [`prop_oneof!`] and [`any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * a [`test_runner::TestRunner`] that replays seeds recorded in
//!   `<file>.proptest-regressions` before running fresh deterministic
//!   cases, and records the seed of any new failure there.
//!
//! Differences from real proptest, by design: no shrinking (the failing
//! seed is reported instead), uniform sampling only, and regression
//! entries are 64-bit RNG seeds rather than proptest's persistence
//! digests.

/// Deterministic RNG and failure-persistence machinery.
pub mod test_runner {
    use std::fmt::Debug;
    use std::io::Write as _;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;

    /// SplitMix64: tiny, seedable, deterministic.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; 0 when `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the case is a counterexample.
        Fail(String),
        /// The input was rejected (e.g. a precondition filter).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (filtered-out) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type test-case closures return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives a strategy/closure pair over regression seeds plus fresh
    /// deterministic cases.
    pub struct TestRunner {
        config: ProptestConfig,
        name: String,
        source_file: &'static str,
    }

    impl TestRunner {
        /// A runner for the named test defined in `source_file`
        /// (pass `file!()`).
        pub fn new(config: ProptestConfig, name: &str, source_file: &'static str) -> Self {
            TestRunner {
                config,
                name: name.to_owned(),
                source_file,
            }
        }

        fn regressions_path(&self) -> Option<PathBuf> {
            let base = PathBuf::from(self.source_file).with_extension("proptest-regressions");
            if base.exists() {
                return Some(base);
            }
            // Test binaries run with cwd = package dir while `file!()` may
            // be workspace-relative; probe upward a little.
            for up in ["..", "../.."] {
                let p = PathBuf::from(up).join(&base);
                if p.exists() {
                    return Some(p);
                }
            }
            // Fall back to the direct path for (best-effort) persistence.
            Some(base)
        }

        fn regression_seeds(&self, path: &PathBuf) -> Vec<u64> {
            let Ok(contents) = std::fs::read_to_string(path) else {
                return Vec::new();
            };
            contents
                .lines()
                .filter_map(|line| {
                    let line = line.trim();
                    let rest = line.strip_prefix("cc ")?;
                    let token = rest.split_whitespace().next()?;
                    // Fold the hex digest (ours: 16 hex chars; real
                    // proptest's: longer) into a 64-bit seed.
                    let mut seed = 0xcbf2_9ce4_8422_2325u64;
                    for b in token.bytes() {
                        seed ^= b as u64;
                        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    Some(seed)
                })
                .collect()
        }

        fn record_failure(&self, path: &PathBuf, seed: u64, msg: &str) {
            let line = format!(
                "cc {:016x} # vendored-proptest seed; {}: {}\n",
                seed,
                self.name,
                msg.lines().next().unwrap_or("")
            );
            if let Ok(existing) = std::fs::read_to_string(path) {
                if existing.contains(&format!("cc {seed:016x}")) {
                    return;
                }
            }
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
        }

        /// Runs `test` over the regression corpus plus `config.cases`
        /// deterministic fresh cases, panicking on the first failure.
        pub fn run<S, F>(&mut self, strategy: S, mut test: F)
        where
            S: crate::strategy::Strategy,
            S::Value: Debug,
            F: FnMut(S::Value) -> TestCaseResult,
        {
            let reg_path = self.regressions_path();
            let mut seeds: Vec<(u64, bool)> = Vec::new();
            if let Some(p) = &reg_path {
                seeds.extend(self.regression_seeds(p).into_iter().map(|s| (s, true)));
            }
            // FNV-1a over the test name gives a stable per-test stream.
            let mut base = 0xcbf2_9ce4_8422_2325u64;
            for b in self.name.bytes() {
                base ^= b as u64;
                base = base.wrapping_mul(0x0000_0100_0000_01B3);
            }
            for i in 0..self.config.cases as u64 {
                seeds.push((
                    base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    false,
                ));
            }

            for (seed, from_corpus) in seeds {
                let mut rng = TestRng::new(seed);
                let value = strategy.generate(&mut rng);
                let shown = format!("{value:?}");
                let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
                let failure: Option<String> = match outcome {
                    Ok(Ok(())) => None,
                    Ok(Err(TestCaseError::Reject(_))) => None,
                    Ok(Err(TestCaseError::Fail(msg))) => Some(msg),
                    Err(payload) => Some(
                        payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "test panicked".to_owned()),
                    ),
                };
                if let Some(msg) = failure {
                    if let Some(p) = &reg_path {
                        if !from_corpus {
                            self.record_failure(p, seed, &msg);
                        }
                    }
                    let origin = if from_corpus {
                        "regression corpus"
                    } else {
                        "fresh case"
                    };
                    panic!(
                        "proptest (vendored): test `{}` failed ({origin}, seed \
                         {seed:#018x}):\n  {msg}\n  input: {shown}",
                        self.name
                    );
                }
            }
        }
    }
}

/// Strategies: value generators composable with `prop_map` etc.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Object-safe strategy wrapper used by [`Union`].
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice between heterogeneous strategies of one value type
    /// (the engine behind [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        /// An empty union; push arms before generating.
        pub fn empty() -> Self {
            Union { arms: Vec::new() }
        }

        /// Adds one alternative.
        pub fn push<S>(&mut self, s: S)
        where
            S: Strategy<Value = V> + 'static,
        {
            self.arms.push(Box::new(s));
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate_dyn(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is uniform in `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one uniformly distributed value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the full domain of `A`.
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `A`'s whole domain.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                file!(),
            );
            runner.run(($($strat,)+), |($($arg,)+)| {
                $body
                Ok(())
            });
        }
    )*};
}

/// Fails the current test case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::empty();
        $(union.push($strat);)+
        union
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.0f64..1.0, v in
            prop::collection::vec(0u8..4, 0..10))
        {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map_compose(tag in prop_oneof![
            (0u16..8).prop_map(|v| ("lo", v)),
            (8u16..16).prop_map(|v| ("hi", v)),
        ]) {
            let (name, v) = tag;
            prop_assert_eq!(name == "lo", v < 8);
            prop_assert_ne!(name, "mid");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 0..50);
        let a: Vec<u64> = strat.generate(&mut crate::test_runner::TestRng::new(9));
        let b: Vec<u64> = strat.generate(&mut crate::test_runner::TestRng::new(9));
        assert_eq!(a, b);
    }
}
