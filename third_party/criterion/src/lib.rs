//! Minimal stand-in for `criterion`: wall-clock timing with a fixed
//! warm-up and measurement budget, reporting mean ns/iter. No statistics,
//! plots, or baselines — just enough to run the workspace's `harness =
//! false` benches offline.

use std::time::{Duration, Instant};

/// Drives individual benchmark functions.
pub struct Criterion {
    measurement_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Benchmarks `f`, printing a mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up & calibration: find an iteration count that fills the
        // measurement budget.
        f(&mut b);
        let per_iter = (b.elapsed.as_nanos().max(1)) as u64 / b.iters;
        let target = self.measurement_budget.as_nanos() as u64;
        b.iters = (target / per_iter.max(1)).clamp(1, 10_000_000);
        b.elapsed = Duration::ZERO;
        f(&mut b);
        let mean = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{id:<55} {mean:>12.1} ns/iter ({} iters)", b.iters);
        self
    }

    /// Accepted for CLI compatibility; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs registered group functions (used by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Defines a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running one or more criterion groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
