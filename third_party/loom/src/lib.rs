//! A small bounded model checker with a loom-compatible API surface.
//!
//! [`model`] runs a closure repeatedly, exploring thread interleavings
//! exhaustively up to a preemption bound (CHESS-style iterative context
//! bounding): every atomic operation and lock acquisition/release is a
//! scheduling point; at each point the scheduler either continues the
//! running thread for free or preempts it, consuming one unit of the
//! preemption budget. All schedules within the budget are enumerated by
//! depth-first search over the decision log; a failing execution panics
//! with its schedule so it can be studied.
//!
//! ## Fidelity and limitations
//!
//! * **Sequential consistency only.** Atomics are modeled as
//!   sequentially consistent regardless of the `Ordering` argument:
//!   interleaving bugs (lost updates, double retirement, torn
//!   check-then-act sequences) are found; *memory-ordering* relaxation
//!   bugs (a `Relaxed` store where `Release` is needed) are not. The
//!   real loom crate models the C11 memory model; this vendored stand-in
//!   trades that for zero dependencies.
//! * **Preemption bounding.** `LOOM_MAX_PREEMPTIONS` (default 2) bounds
//!   context switches at points where the running thread could have
//!   continued; empirically most concurrency bugs need very few
//!   preemptions. `LOOM_MAX_PREEMPTIONS=0` still explores all orderings
//!   of blocking/termination points. Raise it for deeper searches.
//! * `LOOM_MAX_ITERATIONS` (default 50000) caps explored executions; a
//!   warning is printed if the search is truncated.
//!
//! Only one `model` may run at a time per process (enforced with a
//! global lock); Rust's test harness parallelism is compatible with
//! that.

mod sched;

/// Explores interleavings of `f` under the configured bounds, panicking
/// if any execution panics (assertion failure, deadlock, …).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    sched::run_model(std::sync::Arc::new(f));
}

/// Model-checked threads.
pub mod thread {
    use super::sched;

    pub use super::sched::JoinHandle;

    /// Spawns a model-checked thread. Must be called inside [`model`].
    ///
    /// [`model`]: super::model
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        sched::spawn(f)
    }

    /// A voluntary scheduling point.
    pub fn yield_now() {
        sched::yield_point();
    }
}

/// Spin-loop hint: a scheduling point under the model.
pub mod hint {
    /// Scheduling point standing in for `std::hint::spin_loop`.
    pub fn spin_loop() {
        super::sched::yield_point();
    }
}

/// Model-checked synchronization primitives.
pub mod sync {
    pub use std::sync::Arc;

    /// Model-checked atomics (sequentially consistent; see crate docs).
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use super::super::sched::yield_point;

        macro_rules! atomic_type {
            ($name:ident, $std:ident, $t:ty) => {
                /// Model-checked atomic: every operation is a scheduling
                /// point; storage is a real `std` atomic so even
                /// free-running teardown cannot cause a data race.
                #[derive(Debug, Default)]
                pub struct $name {
                    v: std::sync::atomic::$std,
                }

                impl $name {
                    /// Creates a new atomic.
                    pub const fn new(v: $t) -> Self {
                        $name {
                            v: std::sync::atomic::$std::new(v),
                        }
                    }

                    /// Loads the value (scheduling point).
                    pub fn load(&self, _order: Ordering) -> $t {
                        yield_point();
                        self.v.load(Ordering::SeqCst)
                    }

                    /// Stores a value (scheduling point).
                    pub fn store(&self, val: $t, _order: Ordering) {
                        yield_point();
                        self.v.store(val, Ordering::SeqCst)
                    }

                    /// Swaps the value (scheduling point).
                    pub fn swap(&self, val: $t, _order: Ordering) -> $t {
                        yield_point();
                        self.v.swap(val, Ordering::SeqCst)
                    }

                    /// Compare-and-exchange (scheduling point).
                    pub fn compare_exchange(
                        &self,
                        current: $t,
                        new: $t,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$t, $t> {
                        yield_point();
                        self.v
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    /// Weak compare-and-exchange; never fails spuriously
                    /// here (scheduling point).
                    pub fn compare_exchange_weak(
                        &self,
                        current: $t,
                        new: $t,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$t, $t> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    /// Unsynchronized read for post-model inspection.
                    pub fn into_inner(self) -> $t {
                        self.v.into_inner()
                    }
                }
            };
        }

        macro_rules! atomic_fetch_ops {
            ($name:ident, $t:ty) => {
                impl $name {
                    /// Adds, returning the previous value (scheduling point).
                    pub fn fetch_add(&self, val: $t, _order: Ordering) -> $t {
                        yield_point();
                        self.v.fetch_add(val, Ordering::SeqCst)
                    }

                    /// Subtracts, returning the previous value (scheduling point).
                    pub fn fetch_sub(&self, val: $t, _order: Ordering) -> $t {
                        yield_point();
                        self.v.fetch_sub(val, Ordering::SeqCst)
                    }

                    /// Bitwise-ANDs, returning the previous value (scheduling point).
                    pub fn fetch_and(&self, val: $t, _order: Ordering) -> $t {
                        yield_point();
                        self.v.fetch_and(val, Ordering::SeqCst)
                    }

                    /// Bitwise-ORs, returning the previous value (scheduling point).
                    pub fn fetch_or(&self, val: $t, _order: Ordering) -> $t {
                        yield_point();
                        self.v.fetch_or(val, Ordering::SeqCst)
                    }

                    /// Bitwise-XORs, returning the previous value (scheduling point).
                    pub fn fetch_xor(&self, val: $t, _order: Ordering) -> $t {
                        yield_point();
                        self.v.fetch_xor(val, Ordering::SeqCst)
                    }
                }
            };
        }

        atomic_type!(AtomicBool, AtomicBool, bool);
        atomic_type!(AtomicU32, AtomicU32, u32);
        atomic_type!(AtomicU64, AtomicU64, u64);
        atomic_type!(AtomicUsize, AtomicUsize, usize);
        atomic_fetch_ops!(AtomicU32, u32);
        atomic_fetch_ops!(AtomicU64, u64);
        atomic_fetch_ops!(AtomicUsize, usize);

        impl AtomicBool {
            /// Bitwise-ANDs, returning the previous value (scheduling point).
            pub fn fetch_and(&self, val: bool, _order: Ordering) -> bool {
                yield_point();
                self.v.fetch_and(val, Ordering::SeqCst)
            }

            /// Bitwise-ORs, returning the previous value (scheduling point).
            pub fn fetch_or(&self, val: bool, _order: Ordering) -> bool {
                yield_point();
                self.v.fetch_or(val, Ordering::SeqCst)
            }
        }

        /// Memory fence: modeled as a plain scheduling point.
        pub fn fence(_order: Ordering) {
            yield_point();
        }
    }

    pub use super::sched::{Condvar, Mutex, MutexGuard};
}
