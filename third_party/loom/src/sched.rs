//! The cooperative scheduler + DFS schedule explorer behind [`model`].
//!
//! One logical thread runs at a time. Every scheduling point funnels into
//! [`decide`], which consults the execution's decision log: within the
//! replayed prefix it follows the recorded choice; past the prefix it
//! takes the first option (continue the current thread when possible) and
//! records the alternatives. After each execution the driver backtracks
//! the log depth-first to the last decision with an untried alternative.
//!
//! [`model`]: crate::model

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock};

/// One logical thread's scheduler-visible state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    BlockedJoin(usize),
    BlockedMutex(usize),
    BlockedCondvar(usize),
    Finished,
}

/// One recorded scheduling decision: the options that were available and
/// the index taken. Options are ordered with the previously-running
/// thread first, so index 0 is always the preemption-free continuation.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Choice {
    options: Vec<usize>,
    index: usize,
}

#[derive(Default)]
struct Inner {
    threads: Vec<TState>,
    current: usize,
    schedule: Vec<Choice>,
    pos: usize,
    preemptions_used: usize,
    max_preemptions: usize,
    panicked: bool,
    panic_message: Option<String>,
    done: bool,
    mutexes_held: Vec<bool>,
}

/// Shared scheduler state for one execution.
pub(crate) struct Sched {
    inner: StdMutex<Inner>,
    cv: StdCondvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

pub(crate) struct Ctx {
    sched: Arc<Sched>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow().as_ref().map(f))
}

/// Picks the next thread to run. Caller holds the `Inner` lock. Returns
/// `false` when the execution is over (all threads finished).
fn decide(g: &mut Inner) -> bool {
    let runnable: Vec<usize> = (0..g.threads.len())
        .filter(|&t| g.threads[t] == TState::Runnable)
        .collect();
    if runnable.is_empty() {
        if g.threads.iter().all(|t| *t == TState::Finished) {
            g.done = true;
            return false;
        }
        // Every live thread is blocked: a genuine deadlock in the code
        // under test.
        g.panicked = true;
        g.panic_message
            .get_or_insert_with(|| format!("deadlock: all live threads blocked ({:?})", g.threads));
        g.done = g.threads.iter().all(|t| *t == TState::Finished);
        return false;
    }

    let cur_enabled = runnable.contains(&g.current);
    let options: Vec<usize> = if cur_enabled && g.preemptions_used >= g.max_preemptions {
        vec![g.current]
    } else if cur_enabled {
        std::iter::once(g.current)
            .chain(runnable.iter().copied().filter(|&t| t != g.current))
            .collect()
    } else {
        runnable
    };

    let index = if g.pos < g.schedule.len() {
        assert_eq!(
            g.schedule[g.pos].options, options,
            "loom: non-deterministic execution (schedule replay diverged); \
             the model closure must be deterministic"
        );
        g.schedule[g.pos].index
    } else {
        g.schedule.push(Choice {
            options: options.clone(),
            index: 0,
        });
        0
    };
    let chosen = options[index];
    g.pos += 1;
    if cur_enabled && chosen != g.current {
        g.preemptions_used += 1;
    }
    g.current = chosen;
    true
}

/// Blocks the calling thread until the scheduler hands it the token.
/// Caller holds the lock; returns with the lock held.
fn wait_for_turn<'a>(
    sched: &'a Sched,
    mut g: std::sync::MutexGuard<'a, Inner>,
    tid: usize,
) -> std::sync::MutexGuard<'a, Inner> {
    while g.current != tid && !g.panicked {
        g = sched.cv.wait(g).expect("scheduler lock");
    }
    g
}

/// Aborts the calling logical thread when the execution has failed
/// elsewhere (unless it is already unwinding).
fn bail_if_panicked(g: &Inner) {
    if g.panicked && !std::thread::panicking() {
        panic!("loom: execution aborted (another thread failed)");
    }
}

/// A scheduling point: offer the scheduler a chance to switch threads.
/// Outside a model run this is a no-op.
pub(crate) fn yield_point() {
    let Some((sched, tid)) = with_ctx(|c| (Arc::clone(&c.sched), c.tid)) else {
        return;
    };
    let mut g = sched.inner.lock().expect("scheduler lock");
    if g.panicked || g.done {
        drop(g);
        bail_if_panicked(&sched.inner.lock().expect("scheduler lock"));
        return;
    }
    decide(&mut g);
    sched.cv.notify_all();
    let g = wait_for_turn(&sched, g, tid);
    bail_if_panicked(&g);
}

/// Runs `body` as logical thread `tid`, handling the finish protocol.
fn run_thread(sched: Arc<Sched>, tid: usize, body: impl FnOnce()) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            sched: Arc::clone(&sched),
            tid,
        })
    });
    {
        let g = sched.inner.lock().expect("scheduler lock");
        let _g = wait_for_turn(&sched, g, tid);
        // First turn granted; release the lock and run.
    }
    let result = catch_unwind(AssertUnwindSafe(body));
    let mut g = sched.inner.lock().expect("scheduler lock");
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "thread panicked".to_owned());
        if !msg.contains("loom: execution aborted") {
            g.panicked = true;
            g.panic_message.get_or_insert(msg);
        }
    }
    g.threads[tid] = TState::Finished;
    for t in g.threads.iter_mut() {
        if *t == TState::BlockedJoin(tid) {
            *t = TState::Runnable;
        }
    }
    if g.panicked {
        g.done = g.threads.iter().all(|t| *t == TState::Finished);
    } else {
        decide(&mut g);
    }
    sched.cv.notify_all();
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Handle to a model-checked thread.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<StdMutex<Option<std::thread::Result<T>>>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result.
    pub fn join(self) -> std::thread::Result<T> {
        let (sched, tid) = with_ctx(|c| (Arc::clone(&c.sched), c.tid))
            .expect("loom: JoinHandle::join outside loom::model");
        let mut g = sched.inner.lock().expect("scheduler lock");
        loop {
            if g.threads[self.tid] == TState::Finished {
                break;
            }
            bail_if_panicked(&g);
            g.threads[tid] = TState::BlockedJoin(self.tid);
            decide(&mut g);
            sched.cv.notify_all();
            g = wait_for_turn(&sched, g, tid);
        }
        drop(g);
        self.slot
            .lock()
            .expect("result slot")
            .take()
            .unwrap_or_else(|| Err(Box::new("loom: thread result missing (aborted)")))
    }
}

/// Spawns a new logical (and OS) thread inside the current model run.
pub(crate) fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let sched =
        with_ctx(|c| Arc::clone(&c.sched)).expect("loom: thread::spawn outside loom::model");
    let new_tid = {
        let mut g = sched.inner.lock().expect("scheduler lock");
        g.threads.push(TState::Runnable);
        g.threads.len() - 1
    };
    let slot = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let sched2 = Arc::clone(&sched);
    let os = std::thread::Builder::new()
        .name(format!("loom-{new_tid}"))
        .spawn(move || {
            run_thread(Arc::clone(&sched2), new_tid, move || {
                let r = catch_unwind(AssertUnwindSafe(f));
                let panicked = r.is_err();
                *slot2.lock().expect("result slot") = Some(match r {
                    Ok(v) => Ok(v),
                    Err(p) => Err(p),
                });
                if panicked {
                    panic!("loom: child thread panicked (recorded)");
                }
            });
        })
        .expect("spawn OS thread");
    sched.os_handles.lock().expect("handle list").push(os);
    // Spawning is itself a scheduling point (child may run first).
    yield_point();
    JoinHandle { tid: new_tid, slot }
}

// ---- Mutex ----------------------------------------------------------------

static MUTEX_IDS: AtomicUsize = AtomicUsize::new(0);

/// Model-checked mutual-exclusion lock with a parking_lot-style
/// guard-returning API (`lock()` returns the guard directly).
#[derive(Default, Debug)]
pub struct Mutex<T> {
    id: OnceLock<usize>,
    data: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            id: OnceLock::new(),
            data: StdMutex::new(value),
        }
    }

    fn id(&self) -> usize {
        *self
            .id
            .get_or_init(|| MUTEX_IDS.fetch_add(1, AtomicOrdering::Relaxed))
    }

    /// Acquires the lock; a scheduling point before acquisition and a
    /// blocking point under contention.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let id = self.id();
        let Some((sched, tid)) = with_ctx(|c| (Arc::clone(&c.sched), c.tid)) else {
            // Outside a model run: behave as a plain mutex.
            return MutexGuard {
                mutex: self,
                inner: Some(
                    self.data
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                ),
            };
        };
        yield_point();
        let mut g = sched.inner.lock().expect("scheduler lock");
        if g.mutexes_held.len() <= id {
            g.mutexes_held.resize(id + 1, false);
        }
        loop {
            if !g.mutexes_held[id] {
                g.mutexes_held[id] = true;
                drop(g);
                let inner = self
                    .data
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                return MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                };
            }
            bail_if_panicked(&g);
            if g.panicked {
                // Unwinding teardown: spin for the holder to release.
                drop(g);
                std::thread::yield_now();
                g = sched.inner.lock().expect("scheduler lock");
                if g.mutexes_held.len() <= id {
                    g.mutexes_held.resize(id + 1, false);
                }
                continue;
            }
            g.threads[tid] = TState::BlockedMutex(id);
            decide(&mut g);
            sched.cv.notify_all();
            g = wait_for_turn(&sched, g, tid);
        }
    }

    /// Attempts to acquire the lock without blocking, parking_lot-style
    /// (`Option`, not `Result`). A scheduling point either way, so the
    /// model explores both the acquired and the contended outcome.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let id = self.id();
        let Some(sched) = with_ctx(|c| Arc::clone(&c.sched)) else {
            // Outside a model run: behave as a plain try_lock.
            return match self.data.try_lock() {
                Ok(inner) => Some(MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    mutex: self,
                    inner: Some(p.into_inner()),
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            };
        };
        yield_point();
        let mut g = sched.inner.lock().expect("scheduler lock");
        bail_if_panicked(&g);
        if g.mutexes_held.len() <= id {
            g.mutexes_held.resize(id + 1, false);
        }
        if g.mutexes_held[id] {
            return None;
        }
        g.mutexes_held[id] = true;
        drop(g);
        let inner = self
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Some(MutexGuard {
            mutex: self,
            inner: Some(inner),
        })
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> MutexGuard<'_, T> {
    /// Drops the real inner lock without touching the modeled hold flag;
    /// [`Condvar::wait`] handles the flag itself under the scheduler lock.
    fn release_inner(&mut self) {
        self.inner.take();
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then the modeled hold flag.
        self.inner.take();
        let id = self.mutex.id();
        let Some(sched) = with_ctx(|c| Arc::clone(&c.sched)) else {
            return;
        };
        let mut g = sched.inner.lock().expect("scheduler lock");
        if g.mutexes_held.len() > id {
            g.mutexes_held[id] = false;
        }
        for t in g.threads.iter_mut() {
            if *t == TState::BlockedMutex(id) {
                *t = TState::Runnable;
            }
        }
        sched.cv.notify_all();
        // Releasing is a scheduling point too — but never panic out of a
        // Drop that may run during unwinding; reuse yield_point's checks.
        let panicked = g.panicked;
        drop(g);
        if !panicked && !std::thread::panicking() {
            yield_point();
        }
    }
}

// ---- Condvar ---------------------------------------------------------------

static CONDVAR_IDS: AtomicUsize = AtomicUsize::new(0);

/// Model-checked condition variable with a parking_lot-style API:
/// [`Condvar::wait`] takes the guard by value and returns it re-acquired
/// (no poisoning `Result`).
///
/// Waiting releases the mutex and parks the thread *atomically under the
/// scheduler lock*, so the model has no lost-wakeup window of its own —
/// if the code under test can miss a notification, the explorer reports
/// it as a deadlock with the full schedule. Spurious wakeups are not
/// modeled; condition loops remain correct either way.
#[derive(Default, Debug)]
pub struct Condvar {
    id: OnceLock<usize>,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> usize {
        *self
            .id
            .get_or_init(|| CONDVAR_IDS.fetch_add(1, AtomicOrdering::Relaxed))
    }

    /// Releases `guard`'s mutex, blocks until a notification, and
    /// re-acquires the mutex before returning.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let cid = self.id();
        let mutex = guard.mutex;
        let (sched, tid) = with_ctx(|c| (Arc::clone(&c.sched), c.tid))
            .expect("loom: Condvar::wait outside loom::model");
        {
            let mut g = sched.inner.lock().expect("scheduler lock");
            bail_if_panicked(&g);
            // Atomically (under the scheduler lock): release the mutex,
            // wake its waiters, park this thread on the condvar.
            guard.release_inner();
            let mid = mutex.id();
            if g.mutexes_held.len() > mid {
                g.mutexes_held[mid] = false;
            }
            for t in g.threads.iter_mut() {
                if *t == TState::BlockedMutex(mid) {
                    *t = TState::Runnable;
                }
            }
            g.threads[tid] = TState::BlockedCondvar(cid);
            decide(&mut g);
            sched.cv.notify_all();
            let g = wait_for_turn(&sched, g, tid);
            bail_if_panicked(&g);
        }
        // The guard's inner lock and modeled hold are already released;
        // forget it so its Drop does not release someone else's hold.
        std::mem::forget(guard);
        mutex.lock()
    }

    /// Wakes all threads parked on this condition variable. A scheduling
    /// point, so the explorer covers notify-then-preempt interleavings.
    pub fn notify_all(&self) {
        let cid = self.id();
        let Some(sched) = with_ctx(|c| Arc::clone(&c.sched)) else {
            return;
        };
        {
            let mut g = sched.inner.lock().expect("scheduler lock");
            for t in g.threads.iter_mut() {
                if *t == TState::BlockedCondvar(cid) {
                    *t = TState::Runnable;
                }
            }
            sched.cv.notify_all();
        }
        yield_point();
    }

    /// Wakes one parked thread. The mini-loom explorer wakes the
    /// lowest-id waiter — which waiter wins is a scheduling decision in
    /// real loom, but the protocols under test here only use wake-all
    /// semantics plus condition re-checks, where the choice is invisible.
    pub fn notify_one(&self) {
        let cid = self.id();
        let Some(sched) = with_ctx(|c| Arc::clone(&c.sched)) else {
            return;
        };
        {
            let mut g = sched.inner.lock().expect("scheduler lock");
            if let Some(t) = g
                .threads
                .iter_mut()
                .find(|t| **t == TState::BlockedCondvar(cid))
            {
                *t = TState::Runnable;
            }
            sched.cv.notify_all();
        }
        yield_point();
    }
}

// ---- Driver ----------------------------------------------------------------

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Serializes model runs within the process (the scheduler context is
/// per-OS-thread, but keeping runs exclusive keeps output readable and
/// mutex-id growth bounded).
static MODEL_LOCK: StdMutex<()> = StdMutex::new(());

pub(crate) fn run_model(f: Arc<dyn Fn() + Send + Sync + 'static>) {
    let _serial = MODEL_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 50_000);

    let mut prefix: Vec<Choice> = Vec::new();
    let mut iterations: usize = 0;
    loop {
        iterations += 1;
        let sched = Arc::new(Sched {
            inner: StdMutex::new(Inner {
                threads: vec![TState::Runnable],
                current: 0,
                schedule: prefix.clone(),
                pos: 0,
                preemptions_used: 0,
                max_preemptions,
                panicked: false,
                panic_message: None,
                done: false,
                mutexes_held: Vec::new(),
            }),
            cv: StdCondvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        });

        let sched0 = Arc::clone(&sched);
        let f0 = Arc::clone(&f);
        let root = std::thread::Builder::new()
            .name("loom-0".to_owned())
            .spawn(move || run_thread(sched0, 0, move || f0()))
            .expect("spawn OS thread");

        let (message, schedule) = {
            let mut g = sched.inner.lock().expect("scheduler lock");
            while !g.done {
                g = sched.cv.wait(g).expect("scheduler lock");
            }
            (g.panic_message.take(), std::mem::take(&mut g.schedule))
        };
        let _ = root.join();
        for h in sched.os_handles.lock().expect("handle list").drain(..) {
            let _ = h.join();
        }

        if let Some(msg) = message {
            let trace: Vec<usize> = schedule.iter().map(|c| c.options[c.index]).collect();
            panic!(
                "loom: model check failed on execution #{iterations}\n  {msg}\n  \
                 schedule (thread ids in decision order): {trace:?}"
            );
        }

        match backtrack(schedule) {
            Some(next) => prefix = next,
            None => break,
        }
        if iterations >= max_iterations {
            eprintln!(
                "loom: warning: exploration truncated after {iterations} executions \
                 (raise LOOM_MAX_ITERATIONS to search further)"
            );
            break;
        }
    }
}

/// Depth-first backtracking over the decision log: advance the deepest
/// decision that still has an untried alternative, dropping its suffix.
fn backtrack(mut schedule: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(mut last) = schedule.pop() {
        if last.index + 1 < last.options.len() {
            last.index += 1;
            schedule.push(last);
            return Some(schedule);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::Arc;

    #[test]
    fn finds_lost_update() {
        // Two unsynchronized load-then-store increments must lose an
        // update in SOME interleaving: the model must find it.
        let result = std::panic::catch_unwind(|| {
            crate::model(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let b = Arc::clone(&a);
                let t = crate::thread::spawn(move || {
                    let v = b.load(Ordering::SeqCst);
                    b.store(v + 1, Ordering::SeqCst);
                });
                let v = a.load(Ordering::SeqCst);
                a.store(v + 1, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(result.is_err(), "model must catch the racy increment");
    }

    #[test]
    fn passes_correct_counter() {
        crate::model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::clone(&a);
            let t = crate::thread::spawn(move || {
                b.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn mutex_provides_exclusion() {
        crate::model(|| {
            let m = Arc::new(crate::sync::Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let t = crate::thread::spawn(move || {
                let mut g = m2.lock();
                let v = *g;
                *g = v + 1;
            });
            {
                let mut g = m.lock();
                let v = *g;
                *g = v + 1;
            }
            t.join().unwrap();
            assert_eq!(*m.lock(), 2);
        });
    }
}
