//! Quickstart: compare a single `munmap()` under Linux-style synchronous
//! shootdowns and under Latr's lazy mechanism.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use latr_arch::{MachinePreset, Topology};
use latr_kernel::MachineConfig;
use latr_sim::SECOND;
use latr_workloads::{run_experiment, MunmapMicrobench, PolicyKind};

fn main() {
    println!("Latr quickstart: one page shared by 16 cores, then munmap()ed\n");
    println!(
        "{:<8} {:>14} {:>18} {:>12} {:>12}",
        "policy", "munmap (µs)", "shootdown wait(µs)", "IPIs sent", "states"
    );
    for policy in [
        PolicyKind::Linux,
        PolicyKind::Abis,
        PolicyKind::latr_default(),
    ] {
        let config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
        let workload = MunmapMicrobench::new(16, 1, 200);
        let (res, machine) = run_experiment(config, policy, Box::new(workload), 30 * SECOND);
        println!(
            "{:<8} {:>14.2} {:>18.2} {:>12} {:>12}",
            res.policy,
            res.munmap_ns.map_or(0.0, |s| s.mean) / 1_000.0,
            res.shootdown_wait_ns.map_or(0.0, |s| s.mean) / 1_000.0,
            res.ipis_sent,
            machine
                .stats
                .counter(latr_kernel::metrics::LATR_STATES_SAVED),
        );
    }
    println!(
        "\nLatr removes the IPIs and the ACK wait from the critical path;\n\
         remote cores invalidate lazily at their next scheduler tick (§3)."
    );
}
