//! munmap() latency vs sharing cores (Figs. 6 and 7).
//!
//! ```sh
//! cargo run --release --example munmap_latency            # 2-socket machine
//! cargo run --release --example munmap_latency -- --large # 8-socket, 120 cores
//! ```

use latr_arch::{MachinePreset, Topology};
use latr_kernel::MachineConfig;
use latr_sim::SECOND;
use latr_workloads::{run_experiment, MunmapMicrobench, PolicyKind};

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let (preset, cores): (MachinePreset, &[usize]) = if large {
        (
            MachinePreset::LargeNuma8S120C,
            &[2, 15, 30, 45, 60, 75, 90, 105, 120],
        )
    } else {
        (
            MachinePreset::Commodity2S16C,
            &[1, 2, 4, 6, 8, 10, 12, 14, 16],
        )
    };
    println!(
        "munmap() of one page shared by N cores on the {} machine\n",
        if large {
            "8-socket/120-core"
        } else {
            "2-socket/16-core"
        }
    );
    println!(
        "{:<7} {:>16} {:>20} {:>16} {:>12}",
        "cores", "linux munmap(µs)", "linux shootdown(µs)", "latr munmap(µs)", "saving"
    );
    for &n in cores {
        let run = |policy: PolicyKind| {
            let config = MachineConfig::new(Topology::preset(preset));
            let (res, _) = run_experiment(
                config,
                policy,
                Box::new(MunmapMicrobench::new(n, 1, 120)),
                30 * SECOND,
            );
            (
                res.munmap_ns.map_or(0.0, |s| s.mean) / 1_000.0,
                res.shootdown_wait_ns.map_or(0.0, |s| s.mean) / 1_000.0,
            )
        };
        let (linux_munmap, linux_wait) = run(PolicyKind::Linux);
        let (latr_munmap, _) = run(PolicyKind::latr_default());
        println!(
            "{:<7} {:>16.2} {:>20.2} {:>16.2} {:>11.1}%",
            n,
            linux_munmap,
            linux_wait,
            latr_munmap,
            (1.0 - latr_munmap / linux_munmap) * 100.0
        );
    }
    println!(
        "\nThe paper reports up to 70.8% improvement on the 2-socket machine\n\
         (Fig. 6) and 66.7% on the 120-core machine (Fig. 7)."
    );
}
