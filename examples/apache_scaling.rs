//! Apache throughput scaling (the paper's headline experiment, Figs. 1/9).
//!
//! Sweeps worker cores under Linux, ABIS and Latr, printing requests per
//! second and TLB shootdowns per second.
//!
//! ```sh
//! cargo run --release --example apache_scaling [--quick]
//! ```

use latr_arch::{MachinePreset, Topology};
use latr_kernel::MachineConfig;
use latr_sim::MILLISECOND;
use latr_workloads::{run_experiment, ApacheWorkload, PolicyKind};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let window = if quick { 120 } else { 300 } * MILLISECOND;
    let policies = [
        PolicyKind::Linux,
        PolicyKind::Abis,
        PolicyKind::latr_default(),
    ];

    println!("Apache serving a 10 KB static page (mmap + touch + munmap per request)\n");
    println!(
        "{:<7} {:>14} {:>14} {:>14}   {:>14} {:>14} {:>14}",
        "cores", "linux req/s", "abis req/s", "latr req/s", "linux sd/s", "abis sd/s", "latr sd/s"
    );
    for cores in [1usize, 2, 4, 6, 8, 10, 12] {
        let mut reqs = Vec::new();
        let mut sds = Vec::new();
        for policy in policies {
            let config = MachineConfig::new(Topology::preset(MachinePreset::Commodity2S16C));
            let (res, _) =
                run_experiment(config, policy, Box::new(ApacheWorkload::new(cores)), window);
            reqs.push(res.throughput);
            sds.push(res.shootdowns_per_sec);
        }
        println!(
            "{:<7} {:>14.0} {:>14.0} {:>14.0}   {:>14.0} {:>14.0} {:>14.0}",
            cores, reqs[0], reqs[1], reqs[2], sds[0], sds[1], sds[2]
        );
    }
    println!(
        "\nLinux flattens beyond ~6 cores (munmap holds mmap_sem through the\n\
         synchronous shootdown); Latr keeps scaling — the paper reports +59.9%\n\
         over Linux and +37.9% over ABIS at 12 cores."
    );
}
