//! AutoNUMA page migration under lazy translation coherence (Fig. 11).
//!
//! Runs the Graph500-style workload with NUMA balancing enabled: pages are
//! first-touched on node 0 and then accessed from both sockets, so the
//! AutoNUMA scanner hint-unmaps pages and the hint faults migrate them.
//! Linux shoots every hint-unmap down synchronously; Latr records a state
//! and lets the first sweeping core clear the PTE (§4.3).
//!
//! ```sh
//! cargo run --release --example numa_migration
//! ```

use latr_arch::{MachinePreset, Topology};
use latr_sim::SECOND;
use latr_workloads::{run_experiment, MigrationProfile, MigrationWorkload, PolicyKind};

fn main() {
    let profile = MigrationProfile::by_name("graph500").expect("profile exists");
    println!(
        "graph500 (BFS) with AutoNUMA balancing: {} pages first-touched on node 0\n",
        profile.region_pages
    );
    println!(
        "{:<8} {:>14} {:>16} {:>14} {:>12}",
        "policy", "runtime (ms)", "migrations/s", "hint faults", "IPIs"
    );
    let mut linux_ms = 0.0;
    for policy in [PolicyKind::Linux, PolicyKind::latr_default()] {
        let config = profile.machine_config(Topology::preset(MachinePreset::Commodity2S16C));
        let workload = MigrationWorkload::new(profile, 16, 3_000);
        let (res, machine) = run_experiment(config, policy, Box::new(workload), 30 * SECOND);
        let ms = res.duration_ns as f64 / 1e6;
        if res.policy == "linux" {
            linux_ms = ms;
        }
        println!(
            "{:<8} {:>14.2} {:>16.0} {:>14} {:>12}",
            res.policy,
            ms,
            res.migrations_per_sec,
            machine.stats.counter(latr_kernel::metrics::HINT_FAULTS),
            res.ipis_sent,
        );
        if res.policy == "latr" && linux_ms > 0.0 {
            println!(
                "\nnormalized runtime (latr/linux): {:.3}  (paper reports 0.943 for graph500)",
                ms / linux_ms
            );
        }
    }
}
