#!/usr/bin/env sh
# Local line-coverage report via cargo-llvm-cov (report only, never a
# gate — mirrors the CI `coverage` job). The tool is not vendored; this
# script degrades to a pointer when it is absent rather than failing.
set -eu

if ! cargo llvm-cov --version >/dev/null 2>&1; then
    echo "cargo-llvm-cov is not installed; skipping coverage." >&2
    echo "Install (outside this offline container) with:" >&2
    echo "    cargo +stable install cargo-llvm-cov --locked" >&2
    echo "then re-run: scripts/coverage.sh" >&2
    exit 0
fi

# Summary table for the whole workspace, then an lcov file for editors
# and CI artifact parity. Excludes the vendored third_party stubs: their
# coverage says nothing about the simulator.
cargo llvm-cov --workspace --ignore-filename-regex 'third_party/' --summary-only "$@"
cargo llvm-cov report --lcov --output-path lcov.info
echo "wrote lcov.info"
