#!/usr/bin/env sh
# Runs the rt test suite under a sanitizer (EXPERIMENTS.md "Sanitizers").
#
#   scripts/sanitizers.sh thread    # ThreadSanitizer (default)
#   scripts/sanitizers.sh address   # AddressSanitizer
#
# Sanitizers need nightly (-Zsanitizer). Two modes:
#   - With the `rust-src` component (the CI path): std is rebuilt
#     instrumented via -Zbuild-std, giving full-fidelity reports.
#   - Without it (typical offline container): only our crates are
#     instrumented; `-Cunsafe-allow-abi-mismatch=sanitizer` permits the
#     mixed build and scripts/tsan.supp silences the false races TSan
#     reports on std's own (uninstrumented) primitives.
#
# An explicit --target keeps RUSTFLAGS away from proc macros and build
# scripts (an instrumented proc-macro dylib cannot load into rustc).
set -eu

SAN="${1:-thread}"
case "$SAN" in
    thread|address) ;;
    *)
        echo "usage: scripts/sanitizers.sh [thread|address]" >&2
        exit 2
        ;;
esac

if ! cargo +nightly --version >/dev/null 2>&1; then
    echo "sanitizers need a nightly toolchain (-Zsanitizer); none found — skipping." >&2
    exit 0
fi

SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
HOST=$(rustc +nightly -vV | sed -n 's/^host: //p')
RUSTFLAGS="-Zsanitizer=$SAN"
BUILD_STD=""

if rustc +nightly --print sysroot >/dev/null 2>&1 \
    && [ -d "$(rustc +nightly --print sysroot)/lib/rustlib/src/rust/library" ]; then
    BUILD_STD="-Zbuild-std"
    echo "rust-src found: instrumenting std via -Zbuild-std" >&2
else
    RUSTFLAGS="$RUSTFLAGS -Cunsafe-allow-abi-mismatch=sanitizer"
    echo "no rust-src: mixed build (std uninstrumented), using suppressions" >&2
fi

if [ "$SAN" = "thread" ]; then
    TSAN_OPTIONS="suppressions=$SCRIPT_DIR/tsan.supp ${TSAN_OPTIONS:-}"
    export TSAN_OPTIONS
else
    # Leak checking is miri's job; in the mixed build it would flag
    # std-internal allocations we cannot see into.
    ASAN_OPTIONS="detect_leaks=0 ${ASAN_OPTIONS:-}"
    export ASAN_OPTIONS
fi

# A sanitizer-specific target dir keeps instrumented artifacts from
# poisoning the normal build cache (and vice versa).
CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-target}/san-$SAN"
export CARGO_TARGET_DIR RUSTFLAGS

echo "RUSTFLAGS=$RUSTFLAGS" >&2
# The rt unit tests are where every atomic in PROTOCOL.toml is
# exercised; --target (see above) scopes RUSTFLAGS to target code.
# shellcheck disable=SC2086  # BUILD_STD intentionally word-splits away when empty
exec cargo +nightly test -p latr-core --lib $BUILD_STD --target "$HOST" -- rt::
